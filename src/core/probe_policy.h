// Retry/timeout/backoff policy for latency probes.
//
// Under fault injection (FaultySpace) a probe can come back with no
// measurement. Real systems do not give up after one datagram: they
// retry with a timeout and (usually exponential) backoff before
// declaring the peer dead. ProbePolicy centralizes that contract so
// every build/join/repair/query hot loop pays for faults the same way:
//
//   * each attempt is billed — it goes through whatever MeteredSpace
//     wraps the faulty space, so retries show up in messages/query;
//   * a retry of the same pair re-rolls loss (FaultySpace keys loss on
//     the per-pair attempt count), so retrying genuinely helps against
//     transient loss but never against a crashed peer;
//   * after max_attempts failures the probe gives up and returns
//     nullopt; the caller must skip the target and fall back to its
//     next candidate ("treat as stale"), never assert or fabricate a
//     latency.
//
// Failed attempts and retries are charged to an optional ProbeCounter
// (failed_probes / retries), keeping fault-mode runs auditable and —
// because the charges are per-probe deterministic quantities summed
// atomically — thread-count invariant.
//
// Timeout/backoff is accounting-only: the simulator has no wall clock,
// but GiveUpCostMs() exposes how long a caller waited before declaring
// the target dead, should a latency-budget consumer want it.
#pragma once

#include <optional>

#include "core/latency_space.h"
#include "core/probe_counter.h"
#include "matrix/faulty_space.h"
#include "util/types.h"

namespace np::core {

/// How many fresh random peers a query draws when its start node is
/// unreachable before declaring the query failed. At zero loss the
/// first draw always answers, so the fault-free rng stream is
/// untouched; under heavy loss 8 redraws make a spurious all-start
/// failure (loss^8) negligible next to per-candidate loss.
inline constexpr int kStartRedraws = 8;

struct ProbePolicyConfig {
  /// Total attempts per probe (>= 1); 1 means no retry.
  int max_attempts = 1;
  /// Simulated wait before declaring one attempt lost.
  double timeout_ms = 500.0;
  /// Multiplier applied to the timeout after each failed attempt
  /// (exponential backoff); 1.0 = constant timeout.
  double backoff_factor = 2.0;
};

class ProbePolicy {
 public:
  /// Default-constructed policy == the no-fault contract: one attempt,
  /// nothing charged.
  ProbePolicy() = default;
  explicit ProbePolicy(ProbePolicyConfig config,
                       ProbeCounter* counter = nullptr);

  /// Probes Latency(node, target) through `space`, retrying up to
  /// max_attempts times. Returns the first successful measurement, or
  /// nullopt when every attempt was lost. Every attempt is billed by
  /// the meter wrapping `space`; failures and retries are charged to
  /// the attached counter.
  std::optional<LatencyMs> Probe(const LatencySpace& space, NodeId node,
                                 NodeId target) const;

  int max_attempts() const { return config_.max_attempts; }

  /// Timeout for the given 0-based attempt: timeout_ms grown by
  /// backoff_factor per preceding failure.
  double AttemptTimeoutMs(int attempt) const;

  /// Total simulated time spent before giving a target up (the sum of
  /// all attempt timeouts).
  double GiveUpCostMs() const;

  /// Process-wide default instance (single attempt, no counter): the
  /// exact pre-fault probe behavior, used when no policy is attached.
  static const ProbePolicy& Default();

 private:
  ProbePolicyConfig config_{};
  ProbeCounter* counter_ = nullptr;
};

}  // namespace np::core
