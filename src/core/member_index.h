// Indexed overlay membership: a dense id→slot map over a swap-and-pop
// member vector.
//
// Every structured overlay in this repository keeps its per-member
// state in arrays parallel to a `std::vector<NodeId> members_`, and
// before this class existed most of them located a member with
// `std::find` — an O(overlay) scan on every RemoveMember, which is
// exactly the maintenance blow-up that caps churn experiments well
// below the ROADMAP's n = 10^5 target. MemberIndex makes Contains /
// PositionOf / Add / Remove O(1) (amortized: the slot table grows to
// the largest node id seen), so a leave costs only whatever repair
// probes the scheme itself bills — the honest per-leave price.
//
// The slot table is a dense vector indexed by NodeId (node ids are
// space indices, bounded by the world size), not a hash map: the churn
// hot path pays one bounds check and one load per lookup.
//
// Remove swaps the last member into the vacated slot. Owners of
// parallel per-member arrays mirror that move using the returned
// RemoveResult (position vacated + whether a swap happened).
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace np::core {

class MemberIndex {
 public:
  static constexpr std::size_t kNoPosition = static_cast<std::size_t>(-1);

  /// Outcome of a Remove: `position` is the slot the leaver vacated;
  /// when `swapped` is true the previously-last member now occupies
  /// that slot and parallel arrays must mirror the move.
  struct RemoveResult {
    std::size_t position = 0;
    bool swapped = false;
  };

  MemberIndex() = default;

  /// Rebuilds the index over `members` (replacing any prior state).
  /// Ids must be non-negative and distinct.
  void Reset(std::vector<NodeId> members);

  /// Drops every member (the slot table's capacity is retained).
  void Clear();

  const std::vector<NodeId>& members() const { return members_; }
  std::size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }
  NodeId at(std::size_t position) const { return members_[position]; }

  bool Contains(NodeId node) const {
    return PositionOf(node) != kNoPosition;
  }

  /// Slot of `node`, or kNoPosition when absent. O(1).
  std::size_t PositionOf(NodeId node) const {
    const auto id = static_cast<std::size_t>(node);
    if (node < 0 || id >= slot_of_.size() || slot_of_[id] < 0) {
      return kNoPosition;
    }
    return static_cast<std::size_t>(slot_of_[id]);
  }

  /// Appends `node` and returns its slot. Throws if already present
  /// (double-add) or negative. O(1) amortized.
  std::size_t Add(NodeId node);

  /// Removes `node` by swap-and-pop. Throws if absent (double-remove).
  /// O(1).
  RemoveResult Remove(NodeId node);

 private:
  std::vector<NodeId> members_;
  /// slot_of_[id] = position of id in members_, -1 when absent. Sized
  /// to the largest id seen (ids are space indices, so this is O(n)
  /// for the world, not O(overlay^2)).
  std::vector<std::int64_t> slot_of_;
};

}  // namespace np::core
