// Concurrent serving mode: lock-free snapshot queries racing churn.
//
// The deterministic scenario engine interleaves churn and queries in
// one loop, so its results say nothing about throughput or tail
// latency under live membership change. RunServing runs the same
// workload service-shaped: a single writer thread applies each epoch's
// churn window to the live overlay and publishes an immutable
// OverlaySnapshot at the boundary, while N reader threads answer the
// epoch's queries against their pinned snapshot — concurrently with
// the writer mutating the live overlay toward the next epoch.
//
// Determinism contract: every per-query stream is the same pure
// function of (seed, epoch, query index) the scenario engine uses, the
// snapshot is a deep clone of exactly the state serial replay queries
// at that epoch, and outcomes are reduced serially in query order — so
// the ScenarioReport embedded in a ServingReport is field-for-field
// identical to RunScenario on the same inputs, for every reader
// count. That equivalence is the serving mode's correctness oracle
// (CI-asserted); only the wall-clock metrics (qps, latency
// percentiles) vary run to run.
//
// Staleness: while snapshot k serves, the live membership is already
// churning toward epoch k+1 — the regime where stale routing state
// concentrates load. Each epoch's answers are additionally scored
// against the epoch-(k+1) membership: p_exact_live (still the true
// closest among the peers live when the answer arrives) and
// p_found_departed (the returned peer already left). Both are
// deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "core/churn.h"
#include "core/latency_space.h"
#include "core/nearest_algorithm.h"
#include "core/scenario.h"
#include "matrix/generators.h"
#include "util/types.h"

namespace np::core {

struct ServingConfig {
  /// The workload; serving adds no knobs to it. track_load must stay
  /// off (per-node attribution of racing probes is not deterministic)
  /// and num_threads keeps its build-parallelism meaning.
  ScenarioConfig scenario;
  /// Query threads racing the churn writer. > 1 requires the
  /// algorithm to be ParallelQuerySafe.
  int reader_threads = 1;
};

/// Deterministic staleness of one epoch's answers, scored against the
/// membership live while the snapshot served (= the next epoch's
/// membership; the final epoch scores against itself).
struct StalenessReport {
  int epoch = 0;
  /// Answer is still the true closest among next-epoch members (same
  /// tie epsilon as p_exact_closest). Failed queries count as stale.
  double p_exact_live = 0.0;
  /// The returned peer is no longer a member one epoch later.
  double p_found_departed = 0.0;
};

struct ServingReport {
  /// Deterministic block: field-for-field identical to what
  /// RunScenario produces for config.scenario (the replay oracle).
  ScenarioReport scenario;
  /// Per-epoch staleness (deterministic).
  std::vector<StalenessReport> staleness;
  int reader_threads = 1;
  std::size_t snapshots_published = 0;

  // Wall-clock / scheduling-dependent metrics (vary run to run; never
  // gated on exact values).

  /// Max superseded-but-alive snapshots observed after any publish.
  /// The pin rendezvous bounds it at a small constant, but the value
  /// observed depends on when readers drop pins relative to publish.
  std::size_t max_retired_alive = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double query_latency_p50_us = 0.0;
  double query_latency_p99_us = 0.0;
};

/// Runs `algo` through `schedule` in serving mode. Same contract as
/// RunScenario (layout nullable, population optional) plus: the
/// algorithm must support snapshots, and reader_threads > 1 requires
/// ParallelQuerySafe. The algorithm ends in its final post-churn
/// state, exactly as after RunScenario.
ServingReport RunServing(const LatencySpace& space,
                         const matrix::ClusterLayout* layout,
                         NearestPeerAlgorithm& algo,
                         const ChurnSchedule& schedule,
                         const ServingConfig& config,
                         const std::vector<NodeId>& population = {});

/// Exact (bitwise) field-for-field equality of two scenario reports —
/// the serving-vs-replay equivalence assertion. Doubles are compared
/// with ==: the contract is bit-identity, not tolerance.
bool ScenarioReportsIdentical(const ScenarioReport& a,
                              const ScenarioReport& b);

}  // namespace np::core
