#include "core/experiment.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "util/contract.h"
#include "util/parallel.h"
#include "util/stats.h"

namespace np::core {

namespace {

/// Per-query record filled by the (possibly parallel) query loop and
/// reduced serially in query order, so aggregate metrics do not depend
/// on the thread count.
struct QueryOutcome {
  LatencyMs found_latency = 0.0;
  LatencyMs hub_latency = 0.0;
  std::uint64_t probes = 0;
  int hops = 0;
  bool exact = false;
  bool correct_cluster = false;
  bool same_net = false;
};

/// Thread count for the query loop: the config knob, clamped to 1 for
/// algorithms whose FindNearest mutates state.
int QueryThreads(const ExperimentConfig& config,
                 const NearestPeerAlgorithm& algo) {
  return algo.ParallelQuerySafe() ? util::ResolveThreadCount(
                                        config.num_threads)
                                  : 1;
}

/// The shared per-query scaffolding of both runners: query q draws its
/// RNG and its noise from seeds `base ^ q`, so a query's outcome is a
/// pure function of the runner seed and q — the loop parallelizes with
/// bit-identical results for any thread count, and callers reduce the
/// returned outcomes in query order. `score(out, target, truth,
/// result)` fills the runner-specific fields; probes/hops are filled
/// here.
template <typename Outcome, typename Score>
std::vector<Outcome> RunQueryLoop(const LatencySpace& space,
                                  NearestPeerAlgorithm& algo,
                                  const ExperimentConfig& config,
                                  const OverlaySplit& split, util::Rng& rng,
                                  const Score& score) {
  const std::uint64_t noise_base = rng();
  const std::uint64_t query_base = rng();
  std::vector<Outcome> outcomes(static_cast<std::size_t>(config.num_queries));
  util::ParallelFor(
      0, outcomes.size(), QueryThreads(config, algo), [&](std::size_t q) {
        util::Rng qrng(query_base ^ static_cast<std::uint64_t>(q));
        const NoisySpace noisy(space, config.measurement_noise_frac,
                               noise_base ^ static_cast<std::uint64_t>(q),
                               config.measurement_noise_floor_ms);
        const MeteredSpace metered(noisy);
        const NodeId target = split.targets[qrng.Index(split.targets.size())];
        const NodeId truth = TrueClosestMember(space, split.members, target);

        const QueryResult result = algo.Query(target, metered, qrng);
        NP_ENSURE(result.found != kInvalidNode, "algorithm returned no peer");

        Outcome& out = outcomes[q];
        out.probes = metered.probes();
        out.hops = result.hops;
        score(out, target, truth, result);
      });
  return outcomes;
}

/// Reduction shared by the static and churn-driven clustered runners.
ClusteredMetrics ReduceClusteredOutcomes(
    const std::vector<QueryOutcome>& outcomes,
    const ExperimentConfig& config) {
  ClusteredMetrics metrics;
  metrics.num_queries = config.num_queries;
  int exact = 0;
  int correct_cluster = 0;
  int same_net = 0;
  double total_latency = 0.0;
  double total_hops = 0.0;
  std::uint64_t total_probes = 0;
  std::vector<double> wrong_hub_latencies;
  wrong_hub_latencies.reserve(outcomes.size());
  for (const QueryOutcome& out : outcomes) {
    total_probes += out.probes;
    total_hops += out.hops;
    total_latency += out.found_latency;
    if (out.exact) {
      ++exact;
    } else {
      wrong_hub_latencies.push_back(out.hub_latency);
    }
    correct_cluster += out.correct_cluster ? 1 : 0;
    same_net += out.same_net ? 1 : 0;
  }
  const double n = static_cast<double>(config.num_queries);
  metrics.p_exact_closest = exact / n;
  metrics.p_correct_cluster = correct_cluster / n;
  metrics.p_same_net = same_net / n;
  metrics.mean_found_latency_ms = total_latency / n;
  metrics.mean_probes = static_cast<double>(total_probes) / n;
  metrics.mean_hops = total_hops / n;
  metrics.median_wrong_hub_latency_ms =
      wrong_hub_latencies.empty()
          ? 0.0
          : util::Percentile(std::move(wrong_hub_latencies), 50.0);
  return metrics;
}

struct GenericOutcome {
  LatencyMs found_latency = 0.0;
  LatencyMs truth_latency = 0.0;
  std::uint64_t probes = 0;
  int hops = 0;
  bool exact = false;
};

GenericMetrics ReduceGenericOutcomes(const std::vector<GenericOutcome>& outcomes,
                                     const ExperimentConfig& config) {
  GenericMetrics metrics;
  metrics.num_queries = config.num_queries;
  int exact = 0;
  double total_stretch = 0.0;
  double total_abs_error = 0.0;
  double total_hops = 0.0;
  std::uint64_t total_probes = 0;
  for (const GenericOutcome& out : outcomes) {
    total_probes += out.probes;
    total_hops += out.hops;
    if (out.exact) {
      ++exact;
    }
    total_abs_error += out.found_latency - out.truth_latency;
    // Stretch is undefined when the optimum is ~0; floor the
    // denominator at 1 us.
    total_stretch += out.found_latency / std::max(out.truth_latency, 1e-3);
  }
  const double n = static_cast<double>(config.num_queries);
  metrics.p_exact_closest = exact / n;
  metrics.mean_stretch = total_stretch / n;
  metrics.mean_abs_error_ms = total_abs_error / n;
  metrics.mean_probes = static_cast<double>(total_probes) / n;
  metrics.mean_hops = total_hops / n;
  return metrics;
}

/// The churn phase of the dynamic runners: drives the whole schedule
/// through the overlay (incremental maintenance when supported, one
/// final rebuild otherwise) and bills the measurement traffic.
struct ChurnPhaseResult {
  OverlaySplit live;
  std::int64_t events = 0;
  std::uint64_t maintenance = 0;
};

/// Copies the churn-phase bill into the metrics struct (shared by the
/// clustered and generic overloads).
template <typename Metrics>
void FillChurnMetrics(Metrics& metrics, const ChurnPhaseResult& churn) {
  metrics.churn_events = churn.events;
  metrics.maintenance_messages = churn.maintenance;
  metrics.maintenance_per_event =
      churn.events == 0 ? 0.0
                        : static_cast<double>(churn.maintenance) /
                              static_cast<double>(churn.events);
  metrics.final_members = static_cast<NodeId>(churn.live.members.size());
}

ChurnPhaseResult DriveSchedule(const MeteredSpace& maint,
                               NearestPeerAlgorithm& algo,
                               const ChurnSchedule& schedule,
                               OverlaySplit split, util::Rng& rng) {
  const std::uint64_t build_probes = maint.probes();
  const bool incremental = algo.SupportsChurn();
  ChurnDriver driver(incremental ? &algo : nullptr,
                     std::move(split.members), std::move(split.targets),
                     rng());
  const ChurnStats stats = driver.ApplyAll(schedule);
  if (!incremental && stats.joins + stats.leaves > 0) {
    algo.Build(maint, driver.members(), rng);
  }
  ChurnPhaseResult result;
  result.live.members = driver.members();
  result.live.targets = driver.pool();
  result.events = stats.joins + stats.leaves;
  result.maintenance = maint.probes() - build_probes;
  return result;
}

}  // namespace

OverlaySplit SplitOverlay(NodeId space_size, NodeId overlay_size,
                          util::Rng& rng) {
  NP_ENSURE(overlay_size >= 1, "overlay must be non-empty");
  NP_ENSURE(overlay_size < space_size,
            "need at least one node left over as a target");
  std::vector<NodeId> all(static_cast<std::size_t>(space_size));
  for (NodeId i = 0; i < space_size; ++i) {
    all[static_cast<std::size_t>(i)] = i;
  }
  rng.Shuffle(all);
  OverlaySplit split;
  split.members.assign(all.begin(), all.begin() + overlay_size);
  split.targets.assign(all.begin() + overlay_size, all.end());
  return split;
}

ClusteredMetrics RunClusteredExperiment(const LatencySpace& space,
                                        const matrix::ClusterLayout& layout,
                                        NearestPeerAlgorithm& algo,
                                        const ExperimentConfig& config,
                                        util::Rng& rng) {
  NP_REPORT_AFFECTING();
  NP_ENSURE(config.num_queries >= 1, "num_queries must be >= 1");
  OverlaySplit split = SplitOverlay(space.size(), config.overlay_size, rng);
  // Build-time measurements carry the same noise as query probes: no
  // real overlay gets to memorize exact latencies (this matters for
  // triangulation schemes like Beaconing). The space must outlive the
  // algorithm, which may hold a pointer through its lifetime.
  const NoisySpace build_noisy(space, config.measurement_noise_frac, rng(),
                               config.measurement_noise_floor_ms);
  algo.Build(build_noisy, split.members, rng);

  const auto outcomes = RunQueryLoop<QueryOutcome>(
      space, algo, config, split, rng,
      [&](QueryOutcome& out, NodeId target, NodeId truth,
          const QueryResult& result) {
        // Score with the true (noise-free) latency of the returned peer.
        const LatencyMs truth_latency = space.Latency(truth, target);
        out.found_latency = space.Latency(result.found, target);
        out.exact = out.found_latency <= truth_latency + config.tie_epsilon_ms;
        if (!out.exact) {
          out.hub_latency = layout.HubLatencyOfPeer(result.found);
        }
        out.correct_cluster = layout.SameCluster(result.found, target);
        out.same_net = layout.SameNet(result.found, target);
      });

  return ReduceClusteredOutcomes(outcomes, config);
}

ClusteredMetrics RunClusteredExperiment(const matrix::ClusteredWorld& world,
                                        NearestPeerAlgorithm& algo,
                                        const ExperimentConfig& config,
                                        util::Rng& rng) {
  const MatrixSpace space(world.matrix);
  return RunClusteredExperiment(space, world.layout, algo, config, rng);
}

ClusteredMetrics RunClusteredExperiment(const LatencySpace& space,
                                        const matrix::ClusterLayout& layout,
                                        NearestPeerAlgorithm& algo,
                                        const ExperimentConfig& config,
                                        const ChurnSchedule& schedule,
                                        util::Rng& rng) {
  NP_REPORT_AFFECTING();
  NP_ENSURE(config.num_queries >= 1, "num_queries must be >= 1");
  OverlaySplit split = SplitOverlay(space.size(), config.overlay_size, rng);
  // Maintenance traffic (build, churn handling, rebuilds) is metered
  // so the runner can bill it; noise applies to every build-time and
  // churn-time measurement just like the static runner's build.
  const NoisySpace build_noisy(space, config.measurement_noise_frac, rng(),
                               config.measurement_noise_floor_ms);
  const MeteredSpace maint(build_noisy);
  algo.Build(maint, split.members, rng);

  const ChurnPhaseResult churn =
      DriveSchedule(maint, algo, schedule, std::move(split), rng);

  const auto outcomes = RunQueryLoop<QueryOutcome>(
      space, algo, config, churn.live, rng,
      [&](QueryOutcome& out, NodeId target, NodeId truth,
          const QueryResult& result) {
        const LatencyMs truth_latency = space.Latency(truth, target);
        out.found_latency = space.Latency(result.found, target);
        out.exact = out.found_latency <= truth_latency + config.tie_epsilon_ms;
        if (!out.exact) {
          out.hub_latency = layout.HubLatencyOfPeer(result.found);
        }
        out.correct_cluster = layout.SameCluster(result.found, target);
        out.same_net = layout.SameNet(result.found, target);
      });

  ClusteredMetrics metrics = ReduceClusteredOutcomes(outcomes, config);
  FillChurnMetrics(metrics, churn);
  return metrics;
}

ClusteredMetrics RunClusteredExperiment(const matrix::ClusteredWorld& world,
                                        NearestPeerAlgorithm& algo,
                                        const ExperimentConfig& config,
                                        const ChurnSchedule& schedule,
                                        util::Rng& rng) {
  const MatrixSpace space(world.matrix);
  return RunClusteredExperiment(space, world.layout, algo, config, schedule,
                                rng);
}

GenericMetrics RunGenericExperiment(const LatencySpace& space,
                                    NearestPeerAlgorithm& algo,
                                    const ExperimentConfig& config,
                                    util::Rng& rng) {
  NP_REPORT_AFFECTING();
  NP_ENSURE(config.num_queries >= 1, "num_queries must be >= 1");
  OverlaySplit split = SplitOverlay(space.size(), config.overlay_size, rng);
  const NoisySpace build_noisy(space, config.measurement_noise_frac, rng(),
                               config.measurement_noise_floor_ms);
  algo.Build(build_noisy, split.members, rng);

  const auto outcomes = RunQueryLoop<GenericOutcome>(
      space, algo, config, split, rng,
      [&](GenericOutcome& out, NodeId target, NodeId truth,
          const QueryResult& result) {
        out.truth_latency = space.Latency(truth, target);
        out.found_latency = space.Latency(result.found, target);
        out.exact =
            out.found_latency <= out.truth_latency + config.tie_epsilon_ms;
      });

  return ReduceGenericOutcomes(outcomes, config);
}

GenericMetrics RunGenericExperiment(const LatencySpace& space,
                                    NearestPeerAlgorithm& algo,
                                    const ExperimentConfig& config,
                                    const ChurnSchedule& schedule,
                                    util::Rng& rng) {
  NP_REPORT_AFFECTING();
  NP_ENSURE(config.num_queries >= 1, "num_queries must be >= 1");
  OverlaySplit split = SplitOverlay(space.size(), config.overlay_size, rng);
  const NoisySpace build_noisy(space, config.measurement_noise_frac, rng(),
                               config.measurement_noise_floor_ms);
  const MeteredSpace maint(build_noisy);
  algo.Build(maint, split.members, rng);

  const ChurnPhaseResult churn =
      DriveSchedule(maint, algo, schedule, std::move(split), rng);

  const auto outcomes = RunQueryLoop<GenericOutcome>(
      space, algo, config, churn.live, rng,
      [&](GenericOutcome& out, NodeId target, NodeId truth,
          const QueryResult& result) {
        out.truth_latency = space.Latency(truth, target);
        out.found_latency = space.Latency(result.found, target);
        out.exact =
            out.found_latency <= out.truth_latency + config.tie_epsilon_ms;
      });

  GenericMetrics metrics = ReduceGenericOutcomes(outcomes, config);
  FillChurnMetrics(metrics, churn);
  return metrics;
}

namespace {

/// P(exact closest) of `algo` over `queries` random targets drawn from
/// the non-member pool.
double MeasureExactRate(const LatencySpace& space,
                        NearestPeerAlgorithm& algo,
                        const std::vector<NodeId>& members,
                        const std::vector<NodeId>& pool, int queries,
                        LatencyMs tie_epsilon_ms, util::Rng& rng) {
  NP_ENSURE(!pool.empty(), "no targets left outside the overlay");
  const MeteredSpace metered(space);
  int exact = 0;
  for (int q = 0; q < queries; ++q) {
    const NodeId target = pool[rng.Index(pool.size())];
    const NodeId truth = TrueClosestMember(space, members, target);
    const QueryResult result = algo.Query(target, metered, rng);
    NP_ENSURE(result.found != kInvalidNode, "algorithm returned no peer");
    if (space.Latency(result.found, target) <=
        space.Latency(truth, target) + tie_epsilon_ms) {
      ++exact;
    }
  }
  return static_cast<double>(exact) / queries;
}

}  // namespace

ChurnMetrics RunChurnExperiment(const LatencySpace& space,
                                NearestPeerAlgorithm& algo,
                                NearestPeerAlgorithm& fresh,
                                const ChurnConfig& config, util::Rng& rng) {
  NP_ENSURE(algo.SupportsChurn(), "algorithm does not support churn");
  NP_ENSURE(config.waves >= 1 && config.events >= config.waves,
            "invalid wave schedule");
  NP_ENSURE(config.join_fraction >= 0.0 && config.join_fraction <= 1.0,
            "join fraction must be a probability");

  OverlaySplit split =
      SplitOverlay(space.size(), config.initial_overlay, rng);
  algo.Build(space, split.members, rng);
  std::vector<NodeId> members = split.members;
  std::vector<NodeId> pool = split.targets;  // joinable + targets

  ChurnMetrics metrics;
  const int per_wave = config.events / config.waves;
  for (int wave = 0; wave < config.waves; ++wave) {
    for (int e = 0; e < per_wave; ++e) {
      const bool join = rng.Bernoulli(config.join_fraction);
      if (join && pool.size() > 1) {
        const std::size_t pick = rng.Index(pool.size());
        const NodeId node = pool[pick];
        pool[pick] = pool.back();
        pool.pop_back();
        algo.AddMember(node, rng);
        members.push_back(node);
      } else if (!join && members.size() > 2) {
        const std::size_t pick = rng.Index(members.size());
        const NodeId node = members[pick];
        members[pick] = members.back();
        members.pop_back();
        algo.RemoveMember(node);
        pool.push_back(node);
      }
    }
    util::Rng wave_rng = rng.Fork(static_cast<std::uint64_t>(wave));
    metrics.p_exact_per_wave.push_back(
        MeasureExactRate(space, algo, members, pool,
                         config.queries_per_wave, config.tie_epsilon_ms,
                         wave_rng));
  }

  // Rebuild comparison on the final membership, same query seed stream.
  fresh.Build(space, members, rng);
  util::Rng rebuild_rng = rng.Fork(0xFE5);
  metrics.p_exact_rebuilt = MeasureExactRate(
      space, fresh, members, pool, config.queries_per_wave,
      config.tie_epsilon_ms, rebuild_rng);
  metrics.final_members = static_cast<NodeId>(members.size());
  return metrics;
}

}  // namespace np::core
