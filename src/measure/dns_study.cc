#include "measure/dns_study.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/error.h"

namespace np::measure {

namespace {

/// One server's view needed repeatedly during pair evaluation.
struct ServerTrace {
  NodeId server = kInvalidNode;
  net::TracerouteResult trace;
  std::optional<InferredPop> pop;
};

struct PairPrediction {
  PairExclusion exclusion = PairExclusion::kIncluded;
  double predicted_ms = 0.0;
  bool via_common_router = false;
  int hops_a = 0;
  int hops_b = 0;
};

/// Implements the paper's two-case prediction: through the deepest
/// common router when the traces share one below the PoP, otherwise
/// through the (closest upstream) PoP with per-trace PoP routers.
PairPrediction PredictPairLatency(const net::Topology& topology,
                                  net::Tools& tools, NodeId measurement_host,
                                  const ServerTrace& a,
                                  const ServerTrace& b) {
  PairPrediction out;
  if (!a.pop.has_value() || !b.pop.has_value()) {
    out.exclusion = PairExclusion::kNoTrace;
    return out;
  }
  (void)topology;

  RouterId router_a = kInvalidRouter;
  RouterId router_b = kInvalidRouter;
  int hop_idx_a = -1;
  int hop_idx_b = -1;

  const RouterId common = DeepestCommonRouter(a.trace, b.trace);
  if (common != kInvalidRouter) {
    out.via_common_router = true;
    router_a = common;
    router_b = common;
    for (int i = static_cast<int>(a.trace.hops.size()) - 1; i >= 0; --i) {
      if (a.trace.hops[static_cast<std::size_t>(i)].router == common) {
        hop_idx_a = i;
        break;
      }
    }
    for (int i = static_cast<int>(b.trace.hops.size()) - 1; i >= 0; --i) {
      if (b.trace.hops[static_cast<std::size_t>(i)].router == common) {
        hop_idx_b = i;
        break;
      }
    }
  } else {
    // Case (ii): no shared router; use each trace's deepest router
    // annotated with the cluster PoP ("routers in a PoP are quite
    // close together").
    hop_idx_a = DeepestHopOfPop(a.trace, *a.pop);
    hop_idx_b = DeepestHopOfPop(b.trace, *b.pop);
    if (hop_idx_a < 0 || hop_idx_b < 0) {
      out.exclusion = PairExclusion::kNoTrace;
      return out;
    }
    router_a = a.trace.hops[static_cast<std::size_t>(hop_idx_a)].router;
    router_b = b.trace.hops[static_cast<std::size_t>(hop_idx_b)].router;
  }

  out.hops_a = HopsFromDestination(a.trace, hop_idx_a);
  out.hops_b = HopsFromDestination(b.trace, hop_idx_b);

  const auto ping_a = tools.Ping(measurement_host, a.server);
  const auto ping_b = tools.Ping(measurement_host, b.server);
  const auto ping_ra = tools.PingRouter(measurement_host, router_a);
  const auto ping_rb = tools.PingRouter(measurement_host, router_b);
  if (!ping_a || !ping_b || !ping_ra || !ping_rb) {
    out.exclusion = PairExclusion::kNoTrace;
    return out;
  }
  const double leg_a = *ping_a - *ping_ra;
  const double leg_b = *ping_b - *ping_rb;
  if (leg_a < 0.0 || leg_b < 0.0) {
    out.exclusion = PairExclusion::kNegativeLeg;
    return out;
  }
  out.predicted_ms = leg_a + leg_b;
  return out;
}

}  // namespace

std::vector<double> DnsStudyResult::IncludedRatios() const {
  std::vector<double> out;
  for (const DnsPairRecord& p : pairs) {
    if (p.exclusion == PairExclusion::kIncluded) {
      out.push_back(p.ratio);
    }
  }
  return out;
}

double DnsStudyResult::FractionWithin(double lo, double hi) const {
  const auto ratios = IncludedRatios();
  if (ratios.empty()) {
    return 0.0;
  }
  std::size_t inside = 0;
  for (double r : ratios) {
    if (r >= lo && r <= hi) {
      ++inside;
    }
  }
  return static_cast<double>(inside) / static_cast<double>(ratios.size());
}

util::BinnedScatter DnsStudyResult::RatioVsPredicted(std::size_t bins) const {
  auto scatter = util::BinnedScatter::LogBins(0.5, 100.0, bins);
  for (const DnsPairRecord& p : pairs) {
    if (p.exclusion == PairExclusion::kIncluded) {
      scatter.Add(p.predicted_ms, p.ratio);
    }
  }
  return scatter;
}

std::vector<double> DnsStudyResult::IntraDomainLatencies(int hop_cap) const {
  std::vector<double> out;
  for (const DnsPairRecord& p : pairs) {
    if (p.exclusion == PairExclusion::kSameDomain && p.predicted_ms > 0.0 &&
        p.hops_a <= hop_cap && p.hops_b <= hop_cap) {
      out.push_back(p.predicted_ms);
    }
  }
  return out;
}

std::vector<double> DnsStudyResult::InterDomainMeasured() const {
  std::vector<double> out;
  for (const DnsPairRecord& p : pairs) {
    if ((p.exclusion == PairExclusion::kIncluded ||
         p.exclusion == PairExclusion::kPredictedTooLarge) &&
        p.measured_ms > 0.0) {
      out.push_back(p.measured_ms);
    }
  }
  return out;
}

std::vector<double> DnsStudyResult::InterDomainPredicted() const {
  std::vector<double> out;
  for (const DnsPairRecord& p : pairs) {
    if ((p.exclusion == PairExclusion::kIncluded ||
         p.exclusion == PairExclusion::kPredictedTooLarge) &&
        p.measured_ms > 0.0) {
      out.push_back(p.predicted_ms);
    }
  }
  return out;
}

DnsStudyResult RunDnsStudy(const net::Topology& topology, net::Tools& tools,
                           const DnsStudyOptions& options, util::Rng& rng) {
  NP_ENSURE(options.pairs_per_server >= 1, "need at least one pair/server");
  NP_ENSURE(!topology.vantage_hosts().empty(), "no measurement host");
  const NodeId measurement_host = topology.vantage_hosts().front();

  const std::vector<NodeId> servers =
      topology.HostsOfKind(net::HostKind::kDnsRecursive);
  NP_ENSURE(servers.size() >= 2, "DNS study needs at least two servers");

  DnsStudyResult result;

  // Trace every server once and group by inferred upstream PoP.
  std::vector<ServerTrace> traces(servers.size());
  // Ordered map: the pairing loop below consumes the rng stream and
  // appends pairs per cluster, so cluster visit order is part of the
  // report (determinism contract rule 1, NPL001).
  std::map<std::uint64_t, std::vector<std::size_t>> clusters;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    traces[i].server = servers[i];
    // rockettrace probes each hop repeatedly; two passes merged
    // recover hops that were silent on one probe.
    traces[i].trace = net::MergeTraceroutes(
        tools.Traceroute(measurement_host, servers[i]),
        tools.Traceroute(measurement_host, servers[i]));
    traces[i].pop = ClosestUpstreamPop(traces[i].trace);
    if (traces[i].pop.has_value()) {
      clusters[traces[i].pop->Key()].push_back(i);
      ++result.num_servers_traced;
    }
  }

  // Same-cluster random pairs, ~pairs_per_server each (§3.1: "randomly
  // pick pairs ... such that each DNS server appears in about 4
  // pairs") — one pairing round pairs up a shuffle of the cluster.
  std::set<std::pair<std::size_t, std::size_t>> seen;
  std::vector<std::pair<std::size_t, std::size_t>> pair_indices;
  for (auto& [key, members] : clusters) {
    if (members.size() < 2) {
      continue;
    }
    ++result.num_clusters;
    for (int round = 0; round < options.pairs_per_server; ++round) {
      rng.Shuffle(members);
      for (std::size_t k = 0; k + 1 < members.size(); k += 2) {
        auto pair = std::minmax(members[k], members[k + 1]);
        if (seen.insert({pair.first, pair.second}).second) {
          pair_indices.push_back({pair.first, pair.second});
        }
      }
    }
  }
  // Every same-domain pair as well (Fig 5's intra-domain population).
  {
    // Ordered for the same reason as `clusters`: pair_indices order
    // feeds the report.
    std::map<int, std::vector<std::size_t>> by_domain;
    for (std::size_t i = 0; i < servers.size(); ++i) {
      by_domain[topology.host(servers[i]).domain_id].push_back(i);
    }
    for (const auto& [domain, members] : by_domain) {
      for (std::size_t x = 0; x < members.size(); ++x) {
        for (std::size_t y = x + 1; y < members.size(); ++y) {
          auto pair = std::minmax(members[x], members[y]);
          if (seen.insert({pair.first, pair.second}).second) {
            pair_indices.push_back({pair.first, pair.second});
          }
        }
      }
    }
  }

  // Evaluate.
  result.pairs.reserve(pair_indices.size());
  for (const auto& [ia, ib] : pair_indices) {
    const ServerTrace& a = traces[ia];
    const ServerTrace& b = traces[ib];
    DnsPairRecord record;
    record.server_a = a.server;
    record.server_b = b.server;

    const PairPrediction prediction =
        PredictPairLatency(topology, tools, measurement_host, a, b);
    record.predicted_ms = prediction.predicted_ms;
    record.via_common_router = prediction.via_common_router;
    record.hops_a = prediction.hops_a;
    record.hops_b = prediction.hops_b;

    const bool same_domain = topology.host(a.server).domain_id ==
                             topology.host(b.server).domain_id;

    if (prediction.exclusion != PairExclusion::kIncluded) {
      record.exclusion = prediction.exclusion;
    } else if (same_domain) {
      record.exclusion = PairExclusion::kSameDomain;
    } else if (prediction.hops_a > options.max_hops_from_common ||
               prediction.hops_b > options.max_hops_from_common) {
      record.exclusion = PairExclusion::kTooManyHops;
    } else {
      const auto measured = tools.King(a.server, b.server);
      if (!measured.has_value()) {
        record.exclusion = PairExclusion::kKingFailed;
      } else {
        record.measured_ms = *measured;
        record.ratio = record.predicted_ms / std::max(*measured, 1e-6);
        record.exclusion =
            record.predicted_ms > options.max_predicted_ms
                ? PairExclusion::kPredictedTooLarge
                : PairExclusion::kIncluded;
      }
    }
    result.pairs.push_back(record);
  }
  return result;
}

}  // namespace np::measure
