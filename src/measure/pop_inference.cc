#include "measure/pop_inference.h"

#include <unordered_set>

#include "util/error.h"

namespace np::measure {

std::optional<InferredPop> ClosestUpstreamPop(
    const net::TracerouteResult& trace) {
  for (auto it = trace.hops.rbegin(); it != trace.hops.rend(); ++it) {
    if (it->responded) {
      return InferredPop{it->annotated_as, it->annotated_city};
    }
  }
  return std::nullopt;
}

int DeepestHopOfPop(const net::TracerouteResult& trace,
                    const InferredPop& pop) {
  for (int i = static_cast<int>(trace.hops.size()) - 1; i >= 0; --i) {
    const auto& hop = trace.hops[static_cast<std::size_t>(i)];
    if (hop.responded && hop.annotated_as == pop.as_id &&
        hop.annotated_city == pop.city_id) {
      return i;
    }
  }
  return -1;
}

RouterId DeepestCommonRouter(const net::TracerouteResult& a,
                             const net::TracerouteResult& b) {
  std::unordered_set<RouterId> b_routers;
  for (const auto& hop : b.hops) {
    if (hop.responded) {
      b_routers.insert(hop.router);
    }
  }
  for (auto it = a.hops.rbegin(); it != a.hops.rend(); ++it) {
    if (it->responded && b_routers.count(it->router) > 0) {
      return it->router;
    }
  }
  return kInvalidRouter;
}

int HopsFromDestination(const net::TracerouteResult& trace, int hop_index) {
  NP_ENSURE(hop_index >= 0 &&
                hop_index < static_cast<int>(trace.hops.size()),
            "hop index out of range");
  return static_cast<int>(trace.hops.size()) - hop_index;
}

}  // namespace np::measure
