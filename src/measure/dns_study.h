// The §3.1 DNS-server latency study: predicts latencies between
// same-cluster DNS server pairs from traceroute common routers + pings,
// measures them with King, and reports the prediction measure
// (predicted / measured) — Figs 3 and 4 — plus the intra- vs
// inter-domain latency comparison — Fig 5.
#pragma once

#include <optional>
#include <vector>

#include "measure/pop_inference.h"
#include "net/tools.h"
#include "util/rng.h"
#include "util/stats.h"

namespace np::measure {

struct DnsStudyOptions {
  /// Each server should appear in about this many same-cluster pairs.
  int pairs_per_server = 4;
  /// Pairs with predicted latency above this are excluded (paper:
  /// "DNS servers that are farther away will probably have alternate
  /// shorter paths between them").
  double max_predicted_ms = 100.0;
  /// Pairs whose servers sit more than this many hops from the common
  /// router / PoP are excluded.
  int max_hops_from_common = 10;
};

enum class PairExclusion {
  kIncluded,
  kSameDomain,        // King unusable (recursion not forwarded)
  kNoTrace,           // a trace had no responding hops
  kNegativeLeg,       // ping subtraction went negative
  kTooManyHops,       // more than max_hops_from_common
  kPredictedTooLarge, // predicted > max_predicted_ms
  kKingFailed,        // the King measurement itself failed
};

struct DnsPairRecord {
  NodeId server_a = kInvalidNode;
  NodeId server_b = kInvalidNode;
  PairExclusion exclusion = PairExclusion::kIncluded;
  double predicted_ms = 0.0;
  double measured_ms = 0.0;
  /// predicted / measured (the paper's prediction measure).
  double ratio = 0.0;
  /// True when prediction went through a common router below the PoP
  /// (case (i)); false when it fell back to the PoP (case (ii)).
  bool via_common_router = false;
  int hops_a = 0;
  int hops_b = 0;
};

struct DnsStudyResult {
  /// All evaluated same-cluster pairs, included or not.
  std::vector<DnsPairRecord> pairs;
  /// Number of clusters (inferred PoPs with >= 2 servers).
  int num_clusters = 0;
  int num_servers_traced = 0;

  /// Included pairs' prediction measures (Fig 3 CDF input).
  std::vector<double> IncludedRatios() const;
  /// Fraction of included pairs with ratio in [lo, hi] (paper: ~65%
  /// within [0.5, 2]).
  double FractionWithin(double lo, double hi) const;

  /// Fig 4: per-bin percentiles of ratio vs predicted latency.
  util::BinnedScatter RatioVsPredicted(std::size_t bins = 12) const;

  /// Fig 5 inputs. Intra-domain pairs use predicted latencies (King is
  /// unusable); hop_cap restricts servers' distance from the common
  /// router (the paper plots caps 5 and 10).
  std::vector<double> IntraDomainLatencies(int hop_cap) const;
  std::vector<double> InterDomainMeasured() const;
  std::vector<double> InterDomainPredicted() const;
};

/// Runs the full §3.1 pipeline: traceroute every recursive server from
/// the measurement host (first vantage point), cluster by inferred
/// upstream PoP, build ~pairs_per_server random same-cluster pairs,
/// plus every same-domain pair (for Fig 5), then predict and measure.
DnsStudyResult RunDnsStudy(const net::Topology& topology, net::Tools& tools,
                           const DnsStudyOptions& options, util::Rng& rng);

}  // namespace np::measure
