#include "measure/path_graph.h"

#include <algorithm>
#include <queue>

#include "util/error.h"

namespace np::measure {

namespace {
/// RTT differences can come out slightly negative under jitter; clamp
/// to a small positive weight so Dijkstra stays valid.
constexpr double kMinEdgeWeight = 0.01;
}  // namespace

std::int32_t PathGraph::NodeForPeer(NodeId peer) {
  const auto it = peer_to_node_.find(peer);
  if (it != peer_to_node_.end()) {
    return it->second;
  }
  const auto node = static_cast<std::int32_t>(adjacency_.size());
  peer_to_node_.emplace(peer, node);
  adjacency_.emplace_back();
  node_peer_.push_back(peer);
  node_is_router_.push_back(false);
  peers_.push_back(peer);
  return node;
}

std::int32_t PathGraph::NodeForRouter(RouterId router) {
  const auto it = router_to_node_.find(router);
  if (it != router_to_node_.end()) {
    return it->second;
  }
  const auto node = static_cast<std::int32_t>(adjacency_.size());
  router_to_node_.emplace(router, node);
  adjacency_.emplace_back();
  node_peer_.push_back(kInvalidNode);
  node_is_router_.push_back(true);
  return node;
}

void PathGraph::AddEdge(std::int32_t u, std::int32_t v, double weight) {
  weight = std::max(weight, kMinEdgeWeight);
  // Aggregate repeated observations of an edge by their mean: RTT
  // differences are unbiased but noisy, and taking the minimum instead
  // would systematically underestimate short links observed many
  // times.
  for (Edge& e : adjacency_[static_cast<std::size_t>(u)]) {
    if (e.to == v) {
      e.observations += 1;
      e.weight += (weight - e.weight) / e.observations;
      for (Edge& back : adjacency_[static_cast<std::size_t>(v)]) {
        if (back.to == u) {
          back.observations = e.observations;
          back.weight = e.weight;
          break;
        }
      }
      return;
    }
  }
  adjacency_[static_cast<std::size_t>(u)].push_back(Edge{v, weight, 1});
  adjacency_[static_cast<std::size_t>(v)].push_back(Edge{u, weight, 1});
  ++edge_count_;
}

PathGraph PathGraph::Build(const net::Topology& topology, net::Tools& tools,
                           const std::vector<NodeId>& peers) {
  PathGraph graph;
  const auto& vantages = topology.vantage_hosts();
  NP_ENSURE(!vantages.empty(), "no vantage points");

  for (NodeId peer : peers) {
    // Keep only peers that yield a valid latency (TCP ping or
    // traceroute destination RTT) from at least one vantage point.
    bool retained = false;
    for (NodeId vantage : vantages) {
      const auto trace = tools.Traceroute(vantage, peer);
      const auto tcp = tools.TcpPing(vantage, peer);

      // Valid hop sequence: consecutive responding entries become
      // edges weighted by the RTT difference.
      std::int32_t prev_node = -1;
      double prev_rtt = 0.0;
      for (const auto& hop : trace.hops) {
        if (!hop.responded) {
          continue;
        }
        const std::int32_t node = graph.NodeForRouter(hop.router);
        if (prev_node >= 0 && node != prev_node) {
          graph.AddEdge(prev_node, node, hop.rtt_ms - prev_rtt);
        }
        prev_node = node;
        prev_rtt = hop.rtt_ms;
      }

      std::optional<LatencyMs> peer_rtt = tcp;
      if (!peer_rtt.has_value() && trace.dest_responded) {
        peer_rtt = trace.dest_rtt_ms;
      }
      if (peer_rtt.has_value() && prev_node >= 0) {
        const std::int32_t peer_node = graph.NodeForPeer(peer);
        graph.AddEdge(prev_node, peer_node, *peer_rtt - prev_rtt);
        retained = true;
      }
    }
    (void)retained;
  }
  return graph;
}

std::vector<PathGraph::Reach> PathGraph::ClosePeers(NodeId peer,
                                                    double max_ms) const {
  std::vector<Reach> out;
  const auto it = peer_to_node_.find(peer);
  if (it == peer_to_node_.end()) {
    return out;
  }
  const std::int32_t source = it->second;

  // Bounded Dijkstra with parent tracking for router-hop counts.
  std::unordered_map<std::int32_t, double> dist;
  std::unordered_map<std::int32_t, std::int32_t> parent;
  using Item = std::pair<double, std::int32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.push({0.0, source});

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    const auto du = dist.find(u);
    if (du == dist.end() || d > du->second) {
      continue;
    }
    if (u != source && !node_is_router_[static_cast<std::size_t>(u)]) {
      // A peer node within range: count routers on the path.
      int hops = 0;
      std::int32_t walk = u;
      while (walk != source) {
        walk = parent.at(walk);
        if (node_is_router_[static_cast<std::size_t>(walk)]) {
          ++hops;
        }
      }
      out.push_back(
          Reach{node_peer_[static_cast<std::size_t>(u)], d, hops});
    }
    for (const Edge& e : adjacency_[static_cast<std::size_t>(u)]) {
      const double nd = d + e.weight;
      if (nd > max_ms) {
        continue;
      }
      const auto existing = dist.find(e.to);
      if (existing == dist.end() || nd < existing->second) {
        dist[e.to] = nd;
        parent[e.to] = u;
        heap.push({nd, e.to});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Reach& a, const Reach& b) {
    return a.latency_ms < b.latency_ms;
  });
  return out;
}

}  // namespace np::measure
