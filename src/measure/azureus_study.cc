#include "measure/azureus_study.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "util/error.h"
#include "util/stats.h"

namespace np::measure {

std::pair<std::size_t, std::size_t> LargestBoundedWindow(
    const std::vector<double>& sorted, double factor) {
  NP_ENSURE(factor >= 1.0, "prune factor must be >= 1");
  NP_ENSURE(std::is_sorted(sorted.begin(), sorted.end()),
            "window search requires sorted input");
  std::size_t best_lo = 0;
  std::size_t best_hi = 0;  // exclusive
  std::size_t lo = 0;
  for (std::size_t hi = 0; hi < sorted.size(); ++hi) {
    while (sorted[hi] > factor * sorted[lo]) {
      ++lo;
    }
    if (hi + 1 - lo > best_hi - best_lo) {
      best_lo = lo;
      best_hi = hi + 1;
    }
  }
  return {best_lo, best_hi};
}

std::vector<int> AzureusStudyResult::UnprunedSizes() const {
  std::vector<int> sizes;
  sizes.reserve(clusters.size());
  for (const auto& c : clusters) {
    sizes.push_back(static_cast<int>(c.peers.size()));
  }
  std::sort(sizes.rbegin(), sizes.rend());
  return sizes;
}

std::vector<int> AzureusStudyResult::PrunedSizes() const {
  std::vector<int> sizes;
  sizes.reserve(clusters.size());
  for (const auto& c : clusters) {
    sizes.push_back(static_cast<int>(c.pruned_peers.size()));
  }
  std::sort(sizes.rbegin(), sizes.rend());
  return sizes;
}

double AzureusStudyResult::FractionInPrunedClustersAtLeast(int k) const {
  int total = 0;
  int in_large = 0;
  for (const auto& c : clusters) {
    total += static_cast<int>(c.peers.size());
    if (static_cast<int>(c.pruned_peers.size()) >= k) {
      in_large += static_cast<int>(c.pruned_peers.size());
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(in_large) / total;
}

std::vector<const AzureusCluster*> AzureusStudyResult::LargestPruned(
    int n) const {
  std::vector<const AzureusCluster*> out;
  out.reserve(clusters.size());
  for (const auto& c : clusters) {
    out.push_back(&c);
  }
  std::sort(out.begin(), out.end(),
            [](const AzureusCluster* a, const AzureusCluster* b) {
              return a->pruned_peers.size() > b->pruned_peers.size();
            });
  if (static_cast<int>(out.size()) > n) {
    out.resize(static_cast<std::size_t>(n));
  }
  return out;
}

AzureusStudyResult RunAzureusStudy(const net::Topology& topology,
                                   net::Tools& tools,
                                   const AzureusStudyOptions& options) {
  const auto& vantages = topology.vantage_hosts();
  NP_ENSURE(!vantages.empty(), "no vantage points");

  AzureusStudyResult result;
  const std::vector<NodeId> peers =
      topology.HostsOfKind(net::HostKind::kAzureusPeer);
  result.total_ips = static_cast<int>(peers.size());

  std::map<RouterId, AzureusCluster> by_hub;

  for (NodeId peer : peers) {
    // Responsiveness screen from the first vantage point: a TCP ping or
    // a traceroute that reaches the destination.
    const auto tcp0 = tools.TcpPing(vantages[0], peer);
    const auto trace0 = tools.Traceroute(vantages[0], peer);
    if (!tcp0.has_value() && !trace0.dest_responded) {
      continue;
    }
    ++result.responsive;

    // Unique upstream router across every vantage point.
    std::vector<net::TracerouteResult> traces;
    traces.reserve(vantages.size());
    traces.push_back(trace0);
    for (std::size_t v = 1; v < vantages.size(); ++v) {
      traces.push_back(tools.Traceroute(vantages[v], peer));
    }
    RouterId hub = kInvalidRouter;
    bool unique = true;
    for (const auto& trace : traces) {
      const int last = trace.LastValidHop();
      if (last < 0) {
        unique = false;
        break;
      }
      const RouterId r = trace.hops[static_cast<std::size_t>(last)].router;
      if (hub == kInvalidRouter) {
        hub = r;
      } else if (hub != r) {
        unique = false;
        break;
      }
    }
    if (!unique || hub == kInvalidRouter) {
      continue;
    }
    ++result.unique_upstream;

    // Hub-to-peer latency: per vantage, (peer RTT) - (hub hop RTT),
    // where the peer RTT comes from a TCP ping or, failing that, the
    // traceroute's destination RTT. Negative estimates are discarded
    // (paper §3.1 handles the analogous case the same way).
    std::vector<double> estimates;
    for (std::size_t v = 0; v < vantages.size(); ++v) {
      const int last = traces[v].LastValidHop();
      if (last < 0) {
        continue;
      }
      const double hub_rtt =
          traces[v].hops[static_cast<std::size_t>(last)].rtt_ms;
      std::optional<LatencyMs> peer_rtt =
          v == 0 ? tcp0 : tools.TcpPing(vantages[v], peer);
      if (!peer_rtt.has_value() && traces[v].dest_responded) {
        peer_rtt = traces[v].dest_rtt_ms;
      }
      if (!peer_rtt.has_value()) {
        continue;
      }
      const double est = *peer_rtt - hub_rtt;
      if (est > 0.0) {
        estimates.push_back(est);
      }
    }
    if (estimates.empty()) {
      continue;
    }
    const double latency = util::Percentile(std::move(estimates), 50.0);

    AzureusCluster& cluster = by_hub[hub];
    cluster.hub = hub;
    cluster.peers.push_back(peer);
    cluster.hub_latencies.push_back(latency);
  }

  // Prune each cluster: the largest subset whose latencies are within
  // prune_factor of one another.
  result.clusters.reserve(by_hub.size());
  for (auto& [hub, cluster] : by_hub) {
    std::vector<std::size_t> order(cluster.peers.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return cluster.hub_latencies[a] < cluster.hub_latencies[b];
    });
    std::vector<double> sorted;
    sorted.reserve(order.size());
    for (std::size_t i : order) {
      sorted.push_back(cluster.hub_latencies[i]);
    }
    const auto [lo, hi] = LargestBoundedWindow(sorted, options.prune_factor);
    for (std::size_t i = lo; i < hi; ++i) {
      cluster.pruned_peers.push_back(cluster.peers[order[i]]);
      cluster.pruned_latencies.push_back(sorted[i]);
    }
    result.clusters.push_back(std::move(cluster));
  }
  return result;
}

}  // namespace np::measure
