#include "measure/heuristic_eval.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "net/ip.h"
#include "util/error.h"

namespace np::measure {

int CloseSets::PopulationSize() const {
  int population = 0;
  for (const auto& c : close) {
    if (!c.empty()) {
      ++population;
    }
  }
  return population;
}

CloseSets ComputeCloseSets(const PathGraph& graph,
                           const HeuristicEvalOptions& options) {
  NP_ENSURE(options.close_ms > 0.0, "close threshold must be positive");
  CloseSets sets;
  sets.peers = graph.peers();
  sets.close.reserve(sets.peers.size());
  for (NodeId peer : sets.peers) {
    sets.close.push_back(graph.ClosePeers(peer, options.close_ms));
  }
  return sets;
}

util::BinnedScatter HopLengthVsLatency(const CloseSets& sets,
                                       double max_latency_ms,
                                       std::size_t bins) {
  auto scatter = util::BinnedScatter::LinearBins(0.0, max_latency_ms, bins);
  for (std::size_t i = 0; i < sets.peers.size(); ++i) {
    const NodeId self = sets.peers[i];
    for (const PathGraph::Reach& reach : sets.close[i]) {
      // Count each unordered pair once.
      if (reach.peer > self) {
        scatter.Add(reach.latency_ms, static_cast<double>(reach.router_hops));
      }
    }
  }
  return scatter;
}

std::vector<PrefixRates> EvaluatePrefixHeuristic(
    const net::Topology& topology, const CloseSets& sets, int min_bits,
    int max_bits) {
  NP_ENSURE(min_bits >= 1 && max_bits <= 32 && min_bits <= max_bits,
            "invalid prefix range");
  const std::size_t n = sets.peers.size();

  std::vector<PrefixRates> out;
  for (int bits = min_bits; bits <= max_bits; ++bits) {
    // Bucket the whole peer set by prefix value.
    std::unordered_map<std::uint32_t, int> bucket_size;
    std::vector<std::uint32_t> prefix(n);
    for (std::size_t i = 0; i < n; ++i) {
      prefix[i] = net::PrefixOf(topology.host(sets.peers[i]).ip, bits);
      ++bucket_size[prefix[i]];
    }

    std::vector<double> fp_rates;
    std::vector<double> fn_rates;
    double candidate_sum = 0.0;
    int population = 0;

    for (std::size_t i = 0; i < n; ++i) {
      const auto& close = sets.close[i];
      if (close.empty()) {
        continue;  // not in the Fig 11 population
      }
      ++population;
      const int same_prefix_total = bucket_size[prefix[i]] - 1;
      candidate_sum += same_prefix_total;

      // Close peers sharing the prefix.
      int close_sharing = 0;
      for (const PathGraph::Reach& reach : close) {
        const std::uint32_t other =
            net::PrefixOf(topology.host(reach.peer).ip, bits);
        if (other == prefix[i]) {
          ++close_sharing;
        }
      }
      const int close_total = static_cast<int>(close.size());
      const int far_total = static_cast<int>(n) - 1 - close_total;
      const int far_sharing = same_prefix_total - close_sharing;

      // FP: far peers that share the prefix / all far peers.
      if (far_total > 0) {
        fp_rates.push_back(static_cast<double>(far_sharing) / far_total);
      }
      // FN: close peers that do NOT share the prefix / all close peers.
      fn_rates.push_back(
          static_cast<double>(close_total - close_sharing) / close_total);
    }

    PrefixRates rates;
    rates.prefix_bits = bits;
    rates.median_false_positive =
        fp_rates.empty() ? 0.0 : util::Percentile(std::move(fp_rates), 50.0);
    rates.median_false_negative =
        fn_rates.empty() ? 0.0 : util::Percentile(std::move(fn_rates), 50.0);
    rates.mean_candidates =
        population == 0 ? 0.0 : candidate_sum / population;
    out.push_back(rates);
  }
  return out;
}

}  // namespace np::measure
