// §5 heuristic evaluations over the traceroute path graph:
//
//  * Fig 10 — inter-peer router hop-length as a function of inter-peer
//    latency for close pairs (< 10 ms): "the number of routers to be
//    tracked in order to discover peers at a given latency range is
//    equal to half the corresponding hop-length value".
//
//  * Fig 11 — false-positive / false-negative rates of the IP-prefix
//    heuristic as a function of matching prefix length, with
//    "close" = within 10 ms along the graph's shortest paths.
#pragma once

#include <vector>

#include "measure/path_graph.h"
#include "util/stats.h"

namespace np::measure {

struct HeuristicEvalOptions {
  /// A pair is "close" below this shortest-path latency (paper: 10 ms).
  double close_ms = 10.0;
};

/// Precomputed close-peer sets, one entry per graph peer.
struct CloseSets {
  std::vector<NodeId> peers;
  std::vector<std::vector<PathGraph::Reach>> close;

  /// Peers with at least one close peer (Fig 11's "population").
  int PopulationSize() const;
};

CloseSets ComputeCloseSets(const PathGraph& graph,
                           const HeuristicEvalOptions& options);

/// Fig 10: binned scatter of router hop-length (y) vs latency (x) over
/// all close pairs.
util::BinnedScatter HopLengthVsLatency(const CloseSets& sets,
                                       double max_latency_ms = 10.0,
                                       std::size_t bins = 10);

struct PrefixRates {
  int prefix_bits = 0;
  double median_false_positive = 0.0;
  double median_false_negative = 0.0;
  /// Mean count of same-prefix peers per population peer (probing cost).
  double mean_candidates = 0.0;
};

/// Fig 11: per-peer FP/FN rates of "same /bits prefix implies close",
/// medians across the population, for each prefix length in
/// [min_bits, max_bits].
std::vector<PrefixRates> EvaluatePrefixHeuristic(
    const net::Topology& topology, const CloseSets& sets, int min_bits,
    int max_bits);

}  // namespace np::measure
