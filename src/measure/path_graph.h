// Traceroute-derived adjacency graph + Dijkstra (§5 evaluation
// substrate): "We track the latencies along traceroutes from the
// Planetlab vantage points to the different peers to get an approximate
// adjacency matrix ... We run the Dijkstra algorithm over this
// adjacency matrix to obtain a set of closest peers for each peer."
//
// Nodes are peers and routers that reported valid latencies; an edge
// connects consecutive valid hops with weight = RTT difference. Used
// for Fig 10 (router hops vs latency) and Fig 11 (prefix FP/FN rates).
#pragma once

#include <unordered_map>
#include <vector>

#include "net/tools.h"

namespace np::measure {

class PathGraph {
 public:
  /// Builds the graph from traceroutes vantage -> each peer.
  /// Peers that respond to neither TCP pings nor traceroutes are kept
  /// out of the graph (the paper retains 22,796 of 156k).
  static PathGraph Build(const net::Topology& topology, net::Tools& tools,
                         const std::vector<NodeId>& peers);

  struct Reach {
    NodeId peer = kInvalidNode;
    LatencyMs latency_ms = 0.0;
    /// Routers on the shortest path between the two peers.
    int router_hops = 0;
  };

  /// All peers within max_ms of `peer` (by graph shortest path),
  /// excluding itself. Bounded Dijkstra.
  std::vector<Reach> ClosePeers(NodeId peer, double max_ms) const;

  /// Peers that made it into the graph.
  const std::vector<NodeId>& peers() const { return peers_; }

  bool ContainsPeer(NodeId peer) const {
    return peer_to_node_.count(peer) > 0;
  }

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edge_count_; }

 private:
  struct Edge {
    std::int32_t to = -1;
    /// Running mean of observed RTT differences.
    double weight = 0.0;
    int observations = 0;
  };

  void AddEdge(std::int32_t u, std::int32_t v, double weight);
  std::int32_t NodeForPeer(NodeId peer);
  std::int32_t NodeForRouter(RouterId router);

  std::vector<NodeId> peers_;
  std::unordered_map<NodeId, std::int32_t> peer_to_node_;
  std::unordered_map<RouterId, std::int32_t> router_to_node_;
  /// node index -> peer id, or kInvalidNode for router nodes.
  std::vector<NodeId> node_peer_;
  /// node index -> true when the node is a router.
  std::vector<bool> node_is_router_;
  std::vector<std::vector<Edge>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace np::measure
