// The §3.2 Azureus clustering study: find each responsive peer's unique
// upstream router via traceroutes from all vantage points, measure
// hub-to-peer latencies by subtracting the hub's traceroute RTT from
// the peer's TCP-ping RTT, group peers into clusters per hub, and prune
// each cluster to members whose hub latencies lie within a factor of
// one another — Figs 6 and 7.
#pragma once

#include <vector>

#include "net/tools.h"
#include "util/rng.h"

namespace np::measure {

struct AzureusStudyOptions {
  /// Hub-to-peer latencies within a pruned cluster must all be within
  /// this factor of one another (paper: 1.5).
  double prune_factor = 1.5;
};

struct AzureusCluster {
  RouterId hub = kInvalidRouter;
  /// Responsive peers with this unique upstream router.
  std::vector<NodeId> peers;
  /// Hub-to-peer latency per peer (same order), ms.
  std::vector<LatencyMs> hub_latencies;
  /// Largest subset whose latencies are within prune_factor.
  std::vector<NodeId> pruned_peers;
  std::vector<LatencyMs> pruned_latencies;
};

struct AzureusStudyResult {
  int total_ips = 0;
  /// Responded to TCP ping or traceroute.
  int responsive = 0;
  /// ... and had the same last valid router from every vantage point.
  int unique_upstream = 0;
  std::vector<AzureusCluster> clusters;

  /// Cluster sizes descending (Fig 6 input).
  std::vector<int> UnprunedSizes() const;
  std::vector<int> PrunedSizes() const;
  /// Fraction of (clustered) peers that sit in pruned clusters of at
  /// least `k` members (paper: ~16% at k = 25).
  double FractionInPrunedClustersAtLeast(int k) const;
  /// The n largest pruned clusters (by pruned size), descending.
  std::vector<const AzureusCluster*> LargestPruned(int n) const;
};

/// Largest contiguous window (over sorted latencies) with
/// max <= factor * min; returns indices into the sorted order.
/// Exposed for testing.
std::pair<std::size_t, std::size_t> LargestBoundedWindow(
    const std::vector<double>& sorted, double factor);

AzureusStudyResult RunAzureusStudy(const net::Topology& topology,
                                   net::Tools& tools,
                                   const AzureusStudyOptions& options);

}  // namespace np::measure
