// PoP inference from rockettrace output (§3.1): "We assume that routers
// annotated with the same AS and city reside in the same ISP PoP", and
// each destination is mapped to its closest upstream PoP — the
// (AS, city) annotation of the last responding hop of the trace.
#pragma once

#include <cstdint>
#include <optional>

#include "net/tools.h"

namespace np::measure {

/// An inferred PoP: the (annotated AS, annotated city) pair.
struct InferredPop {
  int as_id = -1;
  int city_id = -1;

  bool operator==(const InferredPop& other) const = default;

  /// Hashable key for grouping.
  std::uint64_t Key() const {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(as_id))
            << 32) |
           static_cast<std::uint32_t>(city_id);
  }
};

/// The destination's closest upstream PoP, from the deepest responding
/// annotated hop. nullopt when no hop responded.
std::optional<InferredPop> ClosestUpstreamPop(
    const net::TracerouteResult& trace);

/// Index (into trace.hops) of the deepest responding hop annotated with
/// `pop`, or -1 if none.
int DeepestHopOfPop(const net::TracerouteResult& trace,
                    const InferredPop& pop);

/// The deepest router id responding on BOTH traces, or kInvalidRouter.
/// "Deepest" = latest position on trace `a`. This is the paper's
/// "closer router than the PoP" candidate for latency prediction.
RouterId DeepestCommonRouter(const net::TracerouteResult& a,
                             const net::TracerouteResult& b);

/// Number of hops between the destination and the hop at `hop_index`
/// on the trace (the destination itself counts as one hop).
int HopsFromDestination(const net::TracerouteResult& trace, int hop_index);

}  // namespace np::measure
