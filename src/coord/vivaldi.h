// Vivaldi network coordinates (Dabek et al., SIGCOMM'04) — the
// coordinate substrate for the paper's "low dimensionality" discussion
// (§2.2) and for the PIC-style greedy-walk baseline. Includes the
// embedding-error-by-dimension analysis that demonstrates §2.2's claim:
// under the clustering condition no small number of dimensions embeds
// the cluster accurately.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/latency_space.h"
#include "util/rng.h"

namespace np::coord {

/// One Vivaldi spring update of `self` toward/away from a neighbor at
/// measured RTT: adjusts self's coordinate and confidence-weighted
/// error in place (Dabek et al., Fig. 3). `rng` is only consumed when
/// the two coordinates coincide (random escape direction). Shared by
/// the embedding trainer, PlaceNode, and the coordinate
/// NearestPeerAlgorithms' gossip maintenance.
void VivaldiSpringUpdate(double* self, double& self_error,
                         const double* other, double other_error, double rtt,
                         int dims, double ce, double cc, util::Rng& rng);

struct VivaldiConfig {
  int dimensions = 3;
  /// Adaptive timestep constant (paper value 0.25).
  double ce = 0.25;
  /// Error-adaptation constant (paper value 0.25).
  double cc = 0.25;
  /// Update rounds; each round updates every node against one sampled
  /// neighbor.
  int rounds = 64;
  /// Neighbor candidates per node.
  int neighbors = 16;
};

class VivaldiEmbedding {
 public:
  /// Runs the spring relaxation over the members (build-time
  /// measurements are unmetered, matching how coordinate systems
  /// piggyback on background traffic).
  ///
  /// Determinism: Train draws a single root value from `rng` and
  /// derives every stream it needs as `Mix64(Mix64(base ^ round) ^
  /// node)` — per-(round,node), keyed by node *id*, never by position
  /// — and sweeps nodes in sorted-id order. The resulting coordinate
  /// of each node is therefore a function of (seed, node) alone:
  /// permuting the `members` vector yields bit-identical coordinates
  /// (update-order robustness; regression-tested).
  static VivaldiEmbedding Train(const core::LatencySpace& space,
                                std::vector<NodeId> members,
                                const VivaldiConfig& config, util::Rng& rng);

  int dimensions() const { return config_.dimensions; }
  const std::vector<NodeId>& members() const { return members_; }

  /// Coordinate of a member (dimension-sized span into the store).
  const double* CoordinateOf(NodeId member) const;

  /// Predicted RTT between two members.
  LatencyMs PredictedLatency(NodeId a, NodeId b) const;

  /// Distance from an arbitrary coordinate to a member.
  LatencyMs DistanceFrom(const std::vector<double>& coordinate,
                         NodeId member) const;

  /// Positions a non-member node: probes `samples` random members
  /// through the metered space and relaxes a fresh coordinate against
  /// the measurements. Returns the coordinate.
  std::vector<double> PlaceNode(NodeId node,
                                const core::MeteredSpace& metered,
                                int samples, util::Rng& rng) const;

  /// Median over sampled member pairs of
  /// |predicted - actual| / actual.
  double MedianRelativeError(const core::LatencySpace& space,
                             int sample_pairs, util::Rng& rng) const;

 private:
  VivaldiEmbedding(VivaldiConfig config, std::vector<NodeId> members);

  std::size_t IndexOf(NodeId member) const;
  static double Distance(const double* a, const double* b, int dims);

  VivaldiConfig config_;
  std::vector<NodeId> members_;
  std::unordered_map<NodeId, std::size_t> index_;
  /// Row-major members x dimensions.
  std::vector<double> coords_;
};

struct EmbeddingErrorReport {
  int dimensions = 0;
  double median_rel_error = 0.0;
  double p90_rel_error = 0.0;
};

/// §2.2's low-dimensionality check: embedding error as a function of
/// the dimension count. Under the clustering condition the error stays
/// high regardless of dimensions; in a true low-dimensional space it
/// collapses once the dimension matches.
std::vector<EmbeddingErrorReport> EmbeddingErrorByDimension(
    const core::LatencySpace& space, const std::vector<NodeId>& members,
    const std::vector<int>& dimension_choices, const VivaldiConfig& base,
    int sample_pairs, util::Rng& rng);

}  // namespace np::coord
