#include "coord/pic.h"

#include <algorithm>
#include <limits>
#include <set>
#include <unordered_set>

#include "util/contract.h"
#include "util/error.h"

namespace np::coord {

PicNearest::PicNearest(PicConfig config) : config_(config) {
  NP_ENSURE(config_.placement_samples >= 1, "need placement samples");
  NP_ENSURE(config_.walk_neighbors >= 1, "need walk neighbors");
  NP_ENSURE(config_.num_walks >= 1, "need at least one walk");
  NP_ENSURE(config_.max_walk_hops >= 1, "need positive walk bound");
}

const VivaldiEmbedding& PicNearest::embedding() const {
  NP_ENSURE(embedding_ != nullptr, "Build must run first");
  return *embedding_;
}

void PicNearest::Build(const core::LatencySpace& space,
                       std::vector<NodeId> members, util::Rng& rng) {
  NP_ENSURE(!members.empty(), "PIC requires members");
  members_ = std::move(members);
  embedding_ = std::make_unique<VivaldiEmbedding>(VivaldiEmbedding::Train(
      space, members_, config_.vivaldi, rng));

  // Coordinate-space kNN per member plus random escape links.
  const std::size_t n = members_.size();
  neighbors_.assign(n, {});
  std::vector<std::pair<double, std::size_t>> scratch;
  for (std::size_t i = 0; i < n; ++i) {
    scratch.clear();
    scratch.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) {
        continue;
      }
      scratch.push_back(
          {embedding_->PredictedLatency(members_[i], members_[j]), j});
    }
    const std::size_t k = std::min<std::size_t>(
        static_cast<std::size_t>(config_.walk_neighbors), scratch.size());
    std::partial_sort(scratch.begin(),
                      scratch.begin() + static_cast<long>(k), scratch.end());
    std::unordered_set<std::size_t> chosen;
    for (std::size_t t = 0; t < k; ++t) {
      chosen.insert(scratch[t].second);
    }
    for (int r = 0; r < config_.random_links && chosen.size() < n - 1; ++r) {
      std::size_t candidate = rng.Index(n - 1);
      if (candidate >= i) {
        ++candidate;
      }
      chosen.insert(candidate);
    }
    NP_ORDER_INSENSITIVE("assigned then sorted on the next line");
    neighbors_[i].assign(chosen.begin(), chosen.end());
    std::sort(neighbors_[i].begin(), neighbors_[i].end());
  }
}

core::QueryResult PicNearest::FindNearest(NodeId target,
                                          const core::MeteredSpace& metered,
                                          util::Rng& rng) {
  NP_ENSURE(embedding_ != nullptr, "Build must run before FindNearest");
  core::QueryResult result;

  // Position the target from a handful of real probes.
  std::uint64_t probes_before = metered.probes();
  const std::vector<double> target_coord = embedding_->PlaceNode(
      target, metered, config_.placement_samples, rng);

  // Greedy walks on predicted distances (no probing while walking).
  // Ordered sets: probe order below is part of the report (metered
  // probe sequencing under fault injection), so candidates must come
  // out in a deterministic order (determinism contract rule 1).
  std::set<std::size_t> endpoints;
  for (int walk = 0; walk < config_.num_walks; ++walk) {
    std::size_t current = rng.Index(members_.size());
    double current_predicted =
        embedding_->DistanceFrom(target_coord, members_[current]);
    for (int hop = 0; hop < config_.max_walk_hops; ++hop) {
      std::size_t best = current;
      double best_predicted = current_predicted;
      for (std::size_t neighbor : neighbors_[current]) {
        const double predicted =
            embedding_->DistanceFrom(target_coord, members_[neighbor]);
        if (predicted < best_predicted) {
          best_predicted = predicted;
          best = neighbor;
        }
      }
      if (best == current) {
        break;
      }
      current = best;
      current_predicted = best_predicted;
      ++result.hops;
    }
    endpoints.insert(current);
  }

  // Probe the walk endpoints plus their coordinate neighborhoods: the
  // coordinates got us near the target, real measurements resolve what
  // they cannot.
  std::set<std::size_t> to_probe = endpoints;
  for (std::size_t endpoint : endpoints) {
    for (std::size_t neighbor : neighbors_[endpoint]) {
      to_probe.insert(neighbor);
    }
  }
  for (std::size_t candidate : to_probe) {
    const LatencyMs d = metered.Latency(members_[candidate], target);
    if (d < result.found_latency_ms ||
        (d == result.found_latency_ms &&
         members_[candidate] < result.found)) {
      result.found_latency_ms = d;
      result.found = members_[candidate];
    }
  }
  result.probes = metered.probes() - probes_before;
  return result;
}

}  // namespace np::coord
