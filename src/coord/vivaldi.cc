#include "coord/vivaldi.h"

#include <algorithm>
#include <cmath>

#include "util/contract.h"
#include "util/error.h"
#include "util/stats.h"

namespace np::coord {

VivaldiEmbedding::VivaldiEmbedding(VivaldiConfig config,
                                   std::vector<NodeId> members)
    : config_(config), members_(std::move(members)) {
  NP_ENSURE(config_.dimensions >= 1, "need at least one dimension");
  NP_ENSURE(!members_.empty(), "need at least one member");
  index_.reserve(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    index_[members_[i]] = i;
  }
  coords_.assign(members_.size() *
                     static_cast<std::size_t>(config_.dimensions),
                 0.0);
}

std::size_t VivaldiEmbedding::IndexOf(NodeId member) const {
  const auto it = index_.find(member);
  NP_ENSURE(it != index_.end(), "not an embedded member");
  return it->second;
}

double VivaldiEmbedding::Distance(const double* a, const double* b,
                                  int dims) {
  double sq = 0.0;
  for (int d = 0; d < dims; ++d) {
    const double diff = a[d] - b[d];
    sq += diff * diff;
  }
  return std::sqrt(sq);
}

void VivaldiSpringUpdate(double* self, double& self_error,
                         const double* other, double other_error, double rtt,
                         int dims, double ce, double cc, util::Rng& rng) {
  double dist = 0.0;
  for (int d = 0; d < dims; ++d) {
    const double diff = self[d] - other[d];
    dist += diff * diff;
  }
  dist = std::sqrt(dist);

  // Unit vector from other to self; random direction when coincident.
  std::vector<double> unit(static_cast<std::size_t>(dims));
  if (dist < 1e-9) {
    double norm = 0.0;
    for (int d = 0; d < dims; ++d) {
      unit[static_cast<std::size_t>(d)] = rng.Gaussian();
      norm += unit[static_cast<std::size_t>(d)] *
              unit[static_cast<std::size_t>(d)];
    }
    norm = std::sqrt(std::max(norm, 1e-12));
    for (int d = 0; d < dims; ++d) {
      unit[static_cast<std::size_t>(d)] /= norm;
    }
  } else {
    for (int d = 0; d < dims; ++d) {
      unit[static_cast<std::size_t>(d)] = (self[d] - other[d]) / dist;
    }
  }

  const double w = self_error / std::max(self_error + other_error, 1e-9);
  const double relative_error = std::abs(dist - rtt) / std::max(rtt, 1e-6);
  self_error = relative_error * cc * w + self_error * (1.0 - cc * w);
  self_error = std::clamp(self_error, 0.01, 2.0);
  const double delta = ce * w;
  for (int d = 0; d < dims; ++d) {
    self[d] += delta * (rtt - dist) * unit[static_cast<std::size_t>(d)];
  }
}

namespace {

/// Stream tags for Train's forked rng streams (arbitrary constants;
/// distinct so init/neighbor/round streams never collide).
constexpr std::uint64_t kVivaldiInitTag = 0x76697661496e6974ULL;
constexpr std::uint64_t kVivaldiRoundTag = 0x7669766152646e64ULL;

}  // namespace

VivaldiEmbedding VivaldiEmbedding::Train(const core::LatencySpace& space,
                                         std::vector<NodeId> members,
                                         const VivaldiConfig& config,
                                         util::Rng& rng) {
  NP_REPORT_AFFECTING();
  NP_ENSURE(config.rounds >= 1 && config.neighbors >= 1,
            "invalid Vivaldi schedule");
  VivaldiEmbedding embedding(config, std::move(members));
  const auto n = embedding.members_.size();
  const int dims = config.dimensions;

  // Single root draw; all randomness below forks off it keyed by node
  // *id* (and round), never by vector position, and the relaxation
  // sweeps nodes in sorted-id order. A node's coordinate is then a
  // function of (base, id) alone — permuting the input yields
  // bit-identical coordinates per node.
  const std::uint64_t base = rng();

  // Canonical sweep order: positions sorted by node id.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return embedding.members_[a] < embedding.members_[b];
  });

  // Small random init breaks symmetry (per-node stream).
  for (std::size_t i = 0; i < n; ++i) {
    util::Rng init_rng(util::Mix64(
        base ^ kVivaldiInitTag ^
        static_cast<std::uint64_t>(embedding.members_[i])));
    double* row = &embedding.coords_[i * static_cast<std::size_t>(dims)];
    for (int d = 0; d < dims; ++d) {
      row[d] = init_rng.Gaussian(0.0, 1.0);
    }
  }
  std::vector<double> error(n, 1.0);

  // Close-neighbor sets, filled in before the polish phase (empty
  // during coarse placement). A FIXED sparse random neighbor graph is
  // a known failure mode here: the spring system satisfies its few
  // constraints while misplacing nodes globally and plateaus near 30%
  // median error with no local signal; fresh random partners every
  // round keep every pairwise constraint in play.
  std::vector<std::vector<std::size_t>> close_sets(n);

  // Rank of each position in the canonical order, for sampling
  // partners in sorted-rank space (input-order invariant).
  std::vector<std::size_t> rank_of(n);
  for (std::size_t r = 0; r < n; ++r) {
    rank_of[order[r]] = r;
  }

  // `phase` offsets the round key so phase 2 never replays phase 1's
  // streams; within a round each node gets its own
  // Mix64(Mix64(base ^ round) ^ id) stream. Each node contacts one
  // partner per round: a close neighbor or a fresh random member,
  // half/half once close sets exist (the Vivaldi paper's mix of close
  // and far neighbors).
  const auto run_rounds = [&](int phase, int rounds, double ce_start,
                              double ce_end) {
    for (int round = 0; round < rounds; ++round) {
      const double t =
          rounds <= 1 ? 0.0
                      : static_cast<double>(round) / (rounds - 1);
      const double ce = ce_start + t * (ce_end - ce_start);
      const std::uint64_t round_key = util::Mix64(
          base ^ kVivaldiRoundTag ^
          static_cast<std::uint64_t>(phase * config.rounds + round));
      for (std::size_t r = 0; r < n; ++r) {
        const std::size_t i = order[r];
        util::Rng step_rng(util::Mix64(
            round_key ^ static_cast<std::uint64_t>(embedding.members_[i])));
        const auto& close = close_sets[i];
        std::size_t j;
        if (!close.empty() && step_rng.Index(2) == 0) {
          j = close[step_rng.Index(close.size())];
        } else {
          const std::size_t s = step_rng.Index(n - 1);
          j = order[s >= rank_of[i] ? s + 1 : s];
        }
        const double rtt =
            space.Latency(embedding.members_[i], embedding.members_[j]);
        VivaldiSpringUpdate(
            &embedding.coords_[i * static_cast<std::size_t>(dims)],
            error[i],
            &embedding.coords_[j * static_cast<std::size_t>(dims)],
            error[j], rtt, dims, ce, config.cc, step_rng);
      }
    }
  };

  // Phase 1: coarse placement over fresh random partners.
  run_rounds(0, config.rounds, config.ce, config.ce * 0.4);

  // Phase 2: polish. The Vivaldi paper observes that mixing in *close*
  // neighbors sharpens local accuracy — exactly what nearest-peer
  // selection needs. Anchor each node's close set to its
  // coordinate-nearest peers and relax with a decaying timestep.
  if (n > 2) {
    std::vector<std::pair<double, NodeId>> scratch;
    for (std::size_t i = 0; i < n; ++i) {
      scratch.clear();
      scratch.reserve(n - 1);
      const double* ci = &embedding.coords_[i * static_cast<std::size_t>(dims)];
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) {
          continue;
        }
        scratch.push_back(
            {Distance(ci,
                      &embedding.coords_[j * static_cast<std::size_t>(dims)],
                      dims),
             embedding.members_[j]});
      }
      const std::size_t half = std::min<std::size_t>(
          static_cast<std::size_t>(std::max(config.neighbors / 2, 1)),
          scratch.size());
      // Ties broken by id (the pair's second component), keeping the
      // rebuilt sets input-order invariant.
      std::partial_sort(scratch.begin(),
                        scratch.begin() + static_cast<long>(half),
                        scratch.end());
      close_sets[i].reserve(half);
      for (std::size_t t = 0; t < half; ++t) {
        close_sets[i].push_back(embedding.IndexOf(scratch[t].second));
      }
    }
    run_rounds(1, config.rounds / 2 + 1, config.ce * 0.4, config.ce * 0.05);
  }
  return embedding;
}

const double* VivaldiEmbedding::CoordinateOf(NodeId member) const {
  return &coords_[IndexOf(member) *
                  static_cast<std::size_t>(config_.dimensions)];
}

LatencyMs VivaldiEmbedding::PredictedLatency(NodeId a, NodeId b) const {
  return Distance(CoordinateOf(a), CoordinateOf(b), config_.dimensions);
}

LatencyMs VivaldiEmbedding::DistanceFrom(const std::vector<double>& coordinate,
                                         NodeId member) const {
  NP_ENSURE(static_cast<int>(coordinate.size()) == config_.dimensions,
            "coordinate dimensionality mismatch");
  return Distance(coordinate.data(), CoordinateOf(member),
                  config_.dimensions);
}

std::vector<double> VivaldiEmbedding::PlaceNode(
    NodeId node, const core::MeteredSpace& metered, int samples,
    util::Rng& rng) const {
  NP_ENSURE(samples >= 1, "need at least one placement sample");
  const int dims = config_.dimensions;
  const std::size_t k = std::min<std::size_t>(
      static_cast<std::size_t>(samples), members_.size());
  const auto chosen = rng.Sample(members_.size(), k);

  // Measure once, then relax the fresh coordinate over several passes.
  std::vector<std::pair<std::size_t, double>> measured;
  measured.reserve(k);
  for (std::size_t idx : chosen) {
    measured.push_back({idx, metered.Latency(node, members_[idx])});
  }
  std::vector<double> coordinate(static_cast<std::size_t>(dims));
  for (double& c : coordinate) {
    c = rng.Gaussian(0.0, 1.0);
  }
  double error = 1.0;
  constexpr int kPasses = 48;
  for (int pass = 0; pass < kPasses; ++pass) {
    // Decaying timestep: coarse approach first, fine settling last.
    const double ce =
        config_.ce * (1.0 - 0.9 * static_cast<double>(pass) / kPasses);
    for (const auto& [idx, rtt] : measured) {
      VivaldiSpringUpdate(coordinate.data(), error,
                          &coords_[idx * static_cast<std::size_t>(dims)],
                          /*other_error=*/0.2, rtt, dims, ce, config_.cc,
                          rng);
    }
  }
  return coordinate;
}

double VivaldiEmbedding::MedianRelativeError(const core::LatencySpace& space,
                                             int sample_pairs,
                                             util::Rng& rng) const {
  NP_ENSURE(sample_pairs >= 1, "need at least one sample pair");
  NP_ENSURE(members_.size() >= 2, "need at least two members");
  std::vector<double> errors;
  errors.reserve(static_cast<std::size_t>(sample_pairs));
  for (int s = 0; s < sample_pairs; ++s) {
    const std::size_t i = rng.Index(members_.size());
    std::size_t j = rng.Index(members_.size() - 1);
    if (j >= i) {
      ++j;
    }
    const double actual = space.Latency(members_[i], members_[j]);
    const double predicted = PredictedLatency(members_[i], members_[j]);
    errors.push_back(std::abs(predicted - actual) / std::max(actual, 1e-6));
  }
  return util::Percentile(std::move(errors), 50.0);
}

std::vector<EmbeddingErrorReport> EmbeddingErrorByDimension(
    const core::LatencySpace& space, const std::vector<NodeId>& members,
    const std::vector<int>& dimension_choices, const VivaldiConfig& base,
    int sample_pairs, util::Rng& rng) {
  std::vector<EmbeddingErrorReport> out;
  for (int dims : dimension_choices) {
    VivaldiConfig config = base;
    config.dimensions = dims;
    util::Rng train_rng = rng.Fork(static_cast<std::uint64_t>(dims));
    const VivaldiEmbedding embedding =
        VivaldiEmbedding::Train(space, members, config, train_rng);
    std::vector<double> errors;
    errors.reserve(static_cast<std::size_t>(sample_pairs));
    util::Rng eval_rng = rng.Fork(static_cast<std::uint64_t>(dims) + 1000);
    for (int s = 0; s < sample_pairs; ++s) {
      const std::size_t i = eval_rng.Index(members.size());
      std::size_t j = eval_rng.Index(members.size() - 1);
      if (j >= i) {
        ++j;
      }
      const double actual = space.Latency(members[i], members[j]);
      const double predicted =
          embedding.PredictedLatency(members[i], members[j]);
      errors.push_back(std::abs(predicted - actual) /
                       std::max(actual, 1e-6));
    }
    EmbeddingErrorReport report;
    report.dimensions = dims;
    std::sort(errors.begin(), errors.end());
    report.median_rel_error = util::PercentileSorted(errors, 50.0);
    report.p90_rel_error = util::PercentileSorted(errors, 90.0);
    out.push_back(report);
  }
  return out;
}

}  // namespace np::coord
