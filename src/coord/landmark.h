// GNP-style landmark embedding (Ng & Zhang, INFOCOM'02; the family the
// paper cites alongside Vivaldi): a small set of landmark nodes is
// embedded first from their pairwise latencies, then every other node
// positions itself against the landmarks only. Simpler deployment
// model than Vivaldi (no all-pairs gossip) and the same §2.2 failure
// mode under the clustering condition.
//
// We fit coordinates by iterated spring relaxation (robust, dependency
// free) rather than the original's simplex search; the objective —
// minimize relative error to the landmark distances — is the same.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/latency_space.h"
#include "util/rng.h"

namespace np::coord {

/// One relaxation step pulling `self` toward satisfying
/// |self - other| = rtt, with step size `step`. `rng` is only consumed
/// when the coordinates coincide (random nudge). Shared by the
/// landmark trainer and the coordinate NearestPeerAlgorithms.
void LandmarkRelax(double* self, const double* other, double rtt, int dims,
                   double step, util::Rng& rng);

struct LandmarkConfig {
  int num_landmarks = 15;
  int dimensions = 5;
  /// Relaxation passes for the landmark set / per ordinary node.
  int landmark_iterations = 400;
  int node_iterations = 64;
};

class LandmarkEmbedding {
 public:
  static LandmarkEmbedding Train(const core::LatencySpace& space,
                                 std::vector<NodeId> members,
                                 const LandmarkConfig& config,
                                 util::Rng& rng);

  int dimensions() const { return config_.dimensions; }
  const std::vector<NodeId>& members() const { return members_; }
  const std::vector<NodeId>& landmarks() const { return landmarks_; }

  LatencyMs PredictedLatency(NodeId a, NodeId b) const;

  /// Median relative error over sampled member pairs.
  double MedianRelativeError(const core::LatencySpace& space,
                             int sample_pairs, util::Rng& rng) const;

 private:
  LandmarkEmbedding(LandmarkConfig config, std::vector<NodeId> members);

  std::size_t IndexOf(NodeId member) const;

  LandmarkConfig config_;
  std::vector<NodeId> members_;
  std::vector<NodeId> landmarks_;
  std::unordered_map<NodeId, std::size_t> index_;
  std::vector<double> coords_;  // row-major members x dimensions
};

}  // namespace np::coord
