// PIC-style nearest-peer search (Costa et al., ICDCS'04): peers carry
// network coordinates; a joining peer estimates its own coordinate from
// a few probes and then launches greedy walks that hop to the neighbor
// whose *coordinates* predict the smallest distance to the target,
// probing actual latencies only at walk endpoints.
//
// §2.3 predicts this fails under the clustering condition: all cluster
// peers collapse onto nearly identical coordinates, so the walk cannot
// steer into the right end-network.
#pragma once

#include <memory>

#include "coord/vivaldi.h"
#include "core/nearest_algorithm.h"

namespace np::coord {

struct PicConfig {
  VivaldiConfig vivaldi;
  /// Members probed to position the target's coordinate.
  int placement_samples = 16;
  /// Coordinate-space nearest neighbors kept per member.
  int walk_neighbors = 8;
  /// Extra random links per member (escape local minima).
  int random_links = 4;
  /// Independent greedy walks per query.
  int num_walks = 4;
  /// Cap on walk length.
  int max_walk_hops = 64;
};

class PicNearest final : public core::NearestPeerAlgorithm {
 public:
  explicit PicNearest(PicConfig config);

  std::string name() const override { return "pic"; }

  void Build(const core::LatencySpace& space, std::vector<NodeId> members,
             util::Rng& rng) override;

  /// Query path audited read-only over overlay state: safe for the
  /// runner's concurrent per-query threads.
  bool ParallelQuerySafe() const override { return true; }

  core::QueryResult FindNearest(NodeId target,
                                const core::MeteredSpace& metered,
                                util::Rng& rng) override;

  const std::vector<NodeId>& members() const override { return members_; }

  const VivaldiEmbedding& embedding() const;

 private:
  PicConfig config_;
  std::vector<NodeId> members_;
  std::unique_ptr<VivaldiEmbedding> embedding_;
  /// Per member (by position in members_): neighbor positions.
  std::vector<std::vector<std::size_t>> neighbors_;
};

}  // namespace np::coord
