#include "coord/landmark.h"

#include <algorithm>
#include <cmath>

#include "util/contract.h"
#include "util/error.h"
#include "util/stats.h"

namespace np::coord {

namespace {

double Distance(const double* a, const double* b, int dims) {
  double sq = 0.0;
  for (int d = 0; d < dims; ++d) {
    const double diff = a[d] - b[d];
    sq += diff * diff;
  }
  return std::sqrt(sq);
}

}  // namespace

void LandmarkRelax(double* self, const double* other, double rtt, int dims,
                   double step, util::Rng& rng) {
  double dist = Distance(self, other, dims);
  if (dist < 1e-9) {
    // Coincident: nudge in a random direction.
    for (int d = 0; d < dims; ++d) {
      self[d] += step * rng.Gaussian();
    }
    return;
  }
  const double factor = step * (rtt - dist) / dist;
  for (int d = 0; d < dims; ++d) {
    self[d] += factor * (self[d] - other[d]);
  }
}

LandmarkEmbedding::LandmarkEmbedding(LandmarkConfig config,
                                     std::vector<NodeId> members)
    : config_(config), members_(std::move(members)) {
  NP_ENSURE(config_.dimensions >= 1, "need at least one dimension");
  NP_ENSURE(config_.num_landmarks >= config_.dimensions + 1,
            "need at least dims+1 landmarks for a stable embedding");
  NP_ENSURE(!members_.empty(), "need members");
  index_.reserve(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    index_[members_[i]] = i;
  }
  coords_.assign(
      members_.size() * static_cast<std::size_t>(config_.dimensions), 0.0);
}

std::size_t LandmarkEmbedding::IndexOf(NodeId member) const {
  const auto it = index_.find(member);
  NP_ENSURE(it != index_.end(), "not an embedded member");
  return it->second;
}

LandmarkEmbedding LandmarkEmbedding::Train(const core::LatencySpace& space,
                                           std::vector<NodeId> members,
                                           const LandmarkConfig& config,
                                           util::Rng& rng) {
  NP_REPORT_AFFECTING();
  NP_ENSURE(config.landmark_iterations >= 1 && config.node_iterations >= 1,
            "invalid iteration counts");
  LandmarkEmbedding embedding(config, std::move(members));
  const int dims = config.dimensions;
  const std::size_t n = embedding.members_.size();

  // Pick landmarks uniformly (deployments use well-known servers).
  const std::size_t k = std::min<std::size_t>(
      static_cast<std::size_t>(config.num_landmarks), n);
  std::vector<std::size_t> landmark_pos = rng.Sample(n, k);
  for (std::size_t pos : landmark_pos) {
    embedding.landmarks_.push_back(embedding.members_[pos]);
  }

  // Random init for the landmarks, then pairwise relaxation with a
  // decaying step.
  for (std::size_t pos : landmark_pos) {
    for (int d = 0; d < dims; ++d) {
      embedding.coords_[pos * static_cast<std::size_t>(dims) +
                        static_cast<std::size_t>(d)] =
          rng.Gaussian(0.0, 10.0);
    }
  }
  for (int it = 0; it < config.landmark_iterations; ++it) {
    const double step =
        0.25 * (1.0 - 0.9 * static_cast<double>(it) /
                          config.landmark_iterations);
    const std::size_t a = landmark_pos[rng.Index(landmark_pos.size())];
    std::size_t b = a;
    while (b == a) {
      b = landmark_pos[rng.Index(landmark_pos.size())];
    }
    const double rtt =
        space.Latency(embedding.members_[a], embedding.members_[b]);
    LandmarkRelax(&embedding.coords_[a * static_cast<std::size_t>(dims)],
                  &embedding.coords_[b * static_cast<std::size_t>(dims)],
                  rtt, dims, step, rng);
  }

  // Every other node: measure the landmarks once, relax against them.
  for (std::size_t i = 0; i < n; ++i) {
    if (std::find(landmark_pos.begin(), landmark_pos.end(), i) !=
        landmark_pos.end()) {
      continue;
    }
    std::vector<double> rtts;
    rtts.reserve(landmark_pos.size());
    for (std::size_t pos : landmark_pos) {
      rtts.push_back(
          space.Latency(embedding.members_[i], embedding.members_[pos]));
    }
    double* self = &embedding.coords_[i * static_cast<std::size_t>(dims)];
    for (int d = 0; d < dims; ++d) {
      self[d] = rng.Gaussian(0.0, 10.0);
    }
    for (int it = 0; it < config.node_iterations; ++it) {
      const double step =
          0.25 * (1.0 - 0.9 * static_cast<double>(it) /
                            config.node_iterations);
      for (std::size_t l = 0; l < landmark_pos.size(); ++l) {
        LandmarkRelax(self,
                      &embedding.coords_[landmark_pos[l] *
                                         static_cast<std::size_t>(dims)],
                      rtts[l], dims, step, rng);
      }
    }
  }
  return embedding;
}

LatencyMs LandmarkEmbedding::PredictedLatency(NodeId a, NodeId b) const {
  return Distance(
      &coords_[IndexOf(a) * static_cast<std::size_t>(config_.dimensions)],
      &coords_[IndexOf(b) * static_cast<std::size_t>(config_.dimensions)],
      config_.dimensions);
}

double LandmarkEmbedding::MedianRelativeError(const core::LatencySpace& space,
                                              int sample_pairs,
                                              util::Rng& rng) const {
  NP_ENSURE(sample_pairs >= 1 && members_.size() >= 2, "invalid evaluation");
  std::vector<double> errors;
  errors.reserve(static_cast<std::size_t>(sample_pairs));
  for (int s = 0; s < sample_pairs; ++s) {
    const std::size_t i = rng.Index(members_.size());
    std::size_t j = rng.Index(members_.size() - 1);
    if (j >= i) {
      ++j;
    }
    const double actual = space.Latency(members_[i], members_[j]);
    const double predicted = PredictedLatency(members_[i], members_[j]);
    errors.push_back(std::abs(predicted - actual) / std::max(actual, 1e-6));
  }
  return util::Percentile(std::move(errors), 50.0);
}

}  // namespace np::coord
