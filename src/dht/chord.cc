#include "dht/chord.h"

#include <algorithm>

#include "util/error.h"

namespace np::dht {

ChordKey HashToRing(std::uint64_t raw) { return util::Mix64(raw); }

bool ChordRing::InInterval(ChordKey x, ChordKey from, ChordKey to) {
  // Half-open (from, to] on the ring.
  if (from < to) {
    return x > from && x <= to;
  }
  if (from > to) {
    return x > from || x <= to;
  }
  return true;  // from == to: the interval is the whole ring
}

ChordRing::ChordRing(std::vector<NodeId> nodes, const ChordConfig& config)
    : config_(config), nodes_(std::move(nodes)) {
  NP_ENSURE(!nodes_.empty(), "Chord ring requires at least one node");
  ring_.reserve(nodes_.size());
  for (NodeId node : nodes_) {
    RingNode rn;
    rn.id = util::Mix64(static_cast<std::uint64_t>(node) ^ config_.id_salt);
    rn.node = node;
    ring_.push_back(std::move(rn));
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const RingNode& a, const RingNode& b) { return a.id < b.id; });
  for (std::size_t i = 1; i < ring_.size(); ++i) {
    NP_ENSURE(ring_[i].id != ring_[i - 1].id,
              "Chord id collision; change the id salt");
  }
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    node_to_ring_[ring_[i].node] = i;
  }
  // Fully converged finger tables: finger[i] = successor(id + 2^i).
  for (RingNode& rn : ring_) {
    rn.fingers.resize(64);
    for (int i = 0; i < 64; ++i) {
      const ChordKey target = rn.id + (ChordKey{1} << i);
      rn.fingers[static_cast<std::size_t>(i)] =
          static_cast<std::uint32_t>(SuccessorIndex(target));
    }
  }
}

std::size_t ChordRing::SuccessorIndex(ChordKey key) const {
  // First ring node with id >= key, wrapping.
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const RingNode& rn, ChordKey k) { return rn.id < k; });
  if (it == ring_.end()) {
    return 0;
  }
  return static_cast<std::size_t>(it - ring_.begin());
}

ChordKey ChordRing::IdOf(NodeId node) const {
  const auto it = node_to_ring_.find(node);
  NP_ENSURE(it != node_to_ring_.end(), "node not in the ring");
  return ring_[it->second].id;
}

NodeId ChordRing::OwnerOf(ChordKey key) const {
  return ring_[SuccessorIndex(key)].node;
}

ChordRing::LookupResult ChordRing::Lookup(ChordKey key, NodeId start) const {
  const auto it = node_to_ring_.find(start);
  NP_ENSURE(it != node_to_ring_.end(), "lookup must start at a member");
  std::size_t current = it->second;
  LookupResult result;

  // Iterative routing: while the key is not owned by current's
  // successor, jump to the closest preceding finger.
  const std::size_t max_hops = 2 * 64 + ring_.size();
  for (std::size_t guard = 0; guard < max_hops; ++guard) {
    const RingNode& cur = ring_[current];
    const std::size_t successor = (current + 1) % ring_.size();
    if (cur.node == OwnerOf(key)) {
      result.owner = cur.node;
      return result;
    }
    if (InInterval(key, cur.id, ring_[successor].id)) {
      result.owner = ring_[successor].node;
      ++result.hops;
      return result;
    }
    // Closest preceding finger of key.
    std::size_t next = successor;
    for (int i = 63; i >= 0; --i) {
      const std::size_t f = cur.fingers[static_cast<std::size_t>(i)];
      if (f != current && InInterval(ring_[f].id, cur.id, key - 1)) {
        next = f;
        break;
      }
    }
    current = next;
    ++result.hops;
  }
  NP_ENSURE(false, "Chord lookup failed to converge");
  return result;
}

ChordRing::LookupResult ChordRing::Lookup(ChordKey key,
                                          util::Rng& rng) const {
  return Lookup(key, nodes_[rng.Index(nodes_.size())]);
}

ChordRing::LookupResult ChordRing::Put(ChordKey key, ChordValue value,
                                       util::Rng& rng) {
  const LookupResult route = Lookup(key, rng);
  storage_[route.owner][key].push_back(value);
  ++total_stored_;
  return route;
}

ChordRing::LookupResult ChordRing::Remove(ChordKey key, ChordValue value,
                                          util::Rng& rng) {
  const LookupResult route = Lookup(key, rng);
  const auto node_it = storage_.find(route.owner);
  if (node_it == storage_.end()) {
    return route;
  }
  const auto key_it = node_it->second.find(key);
  if (key_it == node_it->second.end()) {
    return route;
  }
  auto& values = key_it->second;
  const auto it = std::find(values.begin(), values.end(), value);
  if (it == values.end()) {
    return route;
  }
  values.erase(it);
  --total_stored_;
  if (values.empty()) {
    node_it->second.erase(key_it);
  }
  return route;
}

std::vector<ChordValue> ChordRing::Get(ChordKey key, util::Rng& rng,
                                       LookupResult* route_out) const {
  const LookupResult route = Lookup(key, rng);
  if (route_out != nullptr) {
    *route_out = route;
  }
  const auto node_it = storage_.find(route.owner);
  if (node_it == storage_.end()) {
    return {};
  }
  const auto key_it = node_it->second.find(key);
  if (key_it == node_it->second.end()) {
    return {};
  }
  return key_it->second;
}

std::size_t ChordRing::StoredAt(NodeId node) const {
  const auto it = storage_.find(node);
  if (it == storage_.end()) {
    return 0;
  }
  std::size_t count = 0;
  for (const auto& [key, values] : it->second) {
    count += values.size();
  }
  return count;
}

}  // namespace np::dht
