// Chord distributed hash table (Stoica et al., SIGCOMM'01), the
// key-value substrate §5 proposes for the UCL / IP-prefix mappings:
// "The participant peers can themselves host the key-value maps
// required above, using one of several distributed hash table designs
// available (Chord, CAN, Pastry...). Many DHTs assume that keys are
// uniformly distributed, which may not be the case with IP addresses.
// In such scenarios, the IP addresses can be hashed."
//
// This is a simulation-grade Chord: a 64-bit identifier ring with
// finger tables and iterative lookups that count routing hops; the
// multimap store lives at each key's successor node.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace np::dht {

using ChordKey = std::uint64_t;
using ChordValue = std::uint64_t;

/// Uniformly hashes an arbitrary 64-bit key (e.g. an IP prefix or a
/// router id) onto the ring, as §5 prescribes for non-uniform keys.
ChordKey HashToRing(std::uint64_t raw);

struct ChordConfig {
  /// Salt mixed into node identifiers (lets tests build distinct rings
  /// from the same node set).
  std::uint64_t id_salt = 0x5eed;
};

class ChordRing {
 public:
  /// Builds a ring over the given nodes (ids are arbitrary but
  /// distinct). Finger tables are built fully converged.
  ChordRing(std::vector<NodeId> nodes, const ChordConfig& config);

  std::size_t size() const { return nodes_.size(); }

  /// The Chord identifier of a node.
  ChordKey IdOf(NodeId node) const;

  /// Ground truth: the node whose identifier is the successor of the
  /// key on the ring.
  NodeId OwnerOf(ChordKey key) const;

  struct LookupResult {
    NodeId owner = kInvalidNode;
    /// Routing hops taken (0 when the start node already owns the key).
    int hops = 0;
  };

  /// Iterative lookup from `start` using finger tables. The returned
  /// owner always equals OwnerOf(key).
  LookupResult Lookup(ChordKey key, NodeId start) const;

  /// Lookup from a random member.
  LookupResult Lookup(ChordKey key, util::Rng& rng) const;

  /// Routed store/retrieve: routes to the owner (counting hops), then
  /// appends / reads the multimap at the owner.
  LookupResult Put(ChordKey key, ChordValue value, util::Rng& rng);
  std::vector<ChordValue> Get(ChordKey key, util::Rng& rng,
                              LookupResult* route = nullptr) const;

  /// Routed delete: routes to the owner (counting hops), then erases
  /// one stored copy of `value` under `key` (no-op when absent —
  /// deployments tolerate repeated departure notices).
  LookupResult Remove(ChordKey key, ChordValue value, util::Rng& rng);

  /// Number of stored (key, value) entries at one node — load metric.
  std::size_t StoredAt(NodeId node) const;

  /// Total values stored.
  std::size_t total_stored() const { return total_stored_; }

  const std::vector<NodeId>& nodes() const { return nodes_; }

 private:
  /// Index into ring_ of the successor of `key`.
  std::size_t SuccessorIndex(ChordKey key) const;

  /// True iff x is in the half-open ring interval (from, to].
  static bool InInterval(ChordKey x, ChordKey from, ChordKey to);

  struct RingNode {
    ChordKey id = 0;
    NodeId node = kInvalidNode;
    /// finger[i] = index (into ring_) of successor(id + 2^i).
    std::vector<std::uint32_t> fingers;
  };

  ChordConfig config_;
  std::vector<NodeId> nodes_;
  std::vector<RingNode> ring_;  // sorted by id
  std::unordered_map<NodeId, std::size_t> node_to_ring_;
  std::unordered_map<NodeId,
                     std::unordered_map<ChordKey, std::vector<ChordValue>>>
      storage_;
  std::size_t total_stored_ = 0;
};

}  // namespace np::dht
