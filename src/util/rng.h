// Deterministic random number generation.
//
// Every stochastic component in the reproduction takes an explicit Rng
// (or a seed) so that experiments are bit-for-bit reproducible. The
// engine is xoshiro256** seeded via splitmix64, which is fast, has a
// 256-bit state, and passes BigCrush — more than adequate for
// simulation workloads and far cheaper than std::mt19937_64.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.h"

namespace np::util {

/// splitmix64 step; used for seeding and for cheap hash mixing.
std::uint64_t SplitMix64(std::uint64_t& state);

/// Stateless 64-bit mix of a value (finalizer of splitmix64). Useful to
/// derive independent child seeds: Mix64(seed ^ kSomeTag).
std::uint64_t Mix64(std::uint64_t x);

/// Order-independent key of an unordered node pair: (min << 32) | max.
/// `Mix64(seed ^ PairKey(a, b))` yields symmetric per-pair randomness —
/// the same stream no matter which endpoint probes (the implicit
/// latency backends and NoisySpace both key on it). Ids must be
/// non-negative and fit 32 bits, which NodeId guarantees.
inline std::uint64_t PairKey(std::int64_t a, std::int64_t b) {
  const auto lo = static_cast<std::uint64_t>(a < b ? a : b);
  const auto hi = static_cast<std::uint64_t>(a < b ? b : a);
  return (lo << 32) | hi;
}

/// Maps a mixed 64-bit value to a uniform double in [0, 1) (53 high
/// bits, same construction as Rng::NextDouble). For one-shot
/// hash-derived uniforms where building an Rng would be overkill.
inline double MixToUnit(std::uint64_t mixed) {
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

/// xoshiro256** engine with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can also be used with
/// <random> distributions and std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from splitmix64(seed).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Raw 64 bits.
  result_type operator()();

  /// Derives an independent child generator; `tag` distinguishes
  /// children derived from the same parent state.
  Rng Fork(std::uint64_t tag);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t NextUint64(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached spare).
  double Gaussian();

  /// Normal with the given mean / standard deviation.
  double Gaussian(double mean, double stddev);

  /// Log-normal: exp(N(mu, sigma)). Parameters are of the underlying
  /// normal, i.e. median of the result is exp(mu).
  double LogNormal(double mu, double sigma);

  /// Exponential with the given mean (= 1/lambda). Requires mean > 0.
  double Exponential(double mean);

  /// Pareto (type I) with the given shape alpha and scale (minimum)
  /// x_m: P(X > x) = (x_m / x)^alpha for x >= x_m. Heavy-tailed; the
  /// mean is alpha * x_m / (alpha - 1) and only finite for alpha > 1.
  /// Requires shape > 0 and scale > 0.
  double Pareto(double shape, double scale);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Uniformly chosen index into a container of the given size (> 0).
  std::size_t Index(std::size_t size);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = Index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n). Requires k <= n.
  std::vector<std::size_t> Sample(std::size_t n, std::size_t k);

 private:
  std::uint64_t s_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace np::util
