// Minimal JSON parsing for config-driven drivers (np_run scenario
// specs). Covers the full JSON value grammar — null, booleans,
// numbers, strings (with escapes), arrays, objects — with positioned
// error messages; it does not aim to be a performance or
// streaming-parser project, scenario specs are a few KB.
//
// Parsing throws util::Error (the project exception) on malformed
// input; accessors throw on type mismatches so a misspelled spec
// fails loudly instead of silently defaulting.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace np::util {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON document (trailing whitespace allowed, trailing
  /// garbage rejected). Throws util::Error with line/column context.
  static JsonValue Parse(std::string_view text);

  JsonValue() = default;

  Type type() const { return type_; }
  bool IsNull() const { return type_ == Type::kNull; }
  bool IsBool() const { return type_ == Type::kBool; }
  bool IsNumber() const { return type_ == Type::kNumber; }
  bool IsString() const { return type_ == Type::kString; }
  bool IsArray() const { return type_ == Type::kArray; }
  bool IsObject() const { return type_ == Type::kObject; }

  bool AsBool() const;
  double AsDouble() const;
  std::int64_t AsInt() const;
  const std::string& AsString() const;

  /// Array access.
  std::size_t size() const;
  const JsonValue& at(std::size_t index) const;
  const std::vector<JsonValue>& items() const;

  /// Object access: Find returns nullptr when the key is absent;
  /// at(key) throws.
  const JsonValue* Find(const std::string& key) const;
  const JsonValue& at(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& entries() const;

  /// Typed object lookups with defaults (absent key -> fallback;
  /// present key of the wrong type still throws).
  bool GetBool(const std::string& key, bool fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  std::int64_t GetInt(const std::string& key, std::int64_t fallback) const;
  std::uint64_t GetUint64(const std::string& key,
                          std::uint64_t fallback) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  /// Array-of-numbers lookup (e.g. diurnal multipliers); a present key
  /// must be an array whose every element is a number.
  std::vector<double> GetDoubleArray(const std::string& key,
                                     std::vector<double> fallback) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace np::util
