// Error handling helpers: a project exception type for configuration /
// construction failures, and NP_ENSURE for invariant checks that must
// stay on in release builds (experiments run RelWithDebInfo).
#pragma once

#include <stdexcept>
#include <string>

namespace np::util {

/// Thrown on invalid configuration or misuse of a public API.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Implementation helper for NP_ENSURE; throws np::util::Error.
[[noreturn]] void ThrowEnsureFailure(const char* expr, const char* file,
                                     int line, const std::string& message);

}  // namespace np::util

/// Invariant check that is active in all build types. Use for conditions
/// that indicate a caller bug or a corrupted internal state; prefer
/// returning errors for recoverable situations.
#define NP_ENSURE(expr, message)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::np::util::ThrowEnsureFailure(#expr, __FILE__, __LINE__, message); \
    }                                                                     \
  } while (false)

/// Debug-only invariant check for hot paths (e.g. per-element matrix
/// accessors) where a branch per call is measurable. Compiles to
/// nothing under NDEBUG (Release / RelWithDebInfo); behaves like
/// NP_ENSURE otherwise. Public mutators and anything that validates
/// external input must keep using NP_ENSURE.
#ifdef NDEBUG
#define NP_DCHECK(expr, message) \
  do {                           \
  } while (false)
#else
#define NP_DCHECK(expr, message) NP_ENSURE(expr, message)
#endif
