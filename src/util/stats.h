// Descriptive statistics used by the measurement pipelines and the
// figure benches: percentile summaries, empirical CDFs, histograms and
// the paper's "binned scatter plots" (Figs 4 and 10 group sample points
// by x into bins and report per-bin percentiles).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/error.h"

namespace np::util {

/// Interpolated percentile of an unsorted sample. q in [0, 100].
/// Throws on an empty sample.
double Percentile(std::vector<double> values, double q);

/// Percentile of an already ascending-sorted sample (no copy).
double PercentileSorted(const std::vector<double>& sorted, double q);

/// Five-number-plus summary of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double p5 = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;

  /// Computes all fields; throws on an empty sample.
  static Summary Of(std::vector<double> values);
};

/// Empirical CDF over a sample; supports both directions of query so the
/// benches can print either "fraction below x" (Fig 5) or "x at
/// cumulative count" (Figs 3, 6).
class Cdf {
 public:
  explicit Cdf(std::vector<double> values);

  std::size_t count() const { return sorted_.size(); }

  /// Fraction of samples <= x, in [0, 1].
  double FractionAtOrBelow(double x) const;

  /// Number of samples <= x.
  std::size_t CountAtOrBelow(double x) const;

  /// Value at the given quantile q in [0, 1] (interpolated).
  double ValueAtQuantile(double q) const;

  /// The sorted sample (ascending); useful for custom rendering.
  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// One bin of a binned scatter plot.
struct ScatterBin {
  double x_representative = 0.0;  // geometric or arithmetic bin center
  std::size_t count = 0;
  double p5 = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
};

/// Binned scatter: groups (x, y) samples into bins over x and reports
/// per-bin percentiles of y — the presentation used by the paper's
/// Figs 4 and 10.
class BinnedScatter {
 public:
  /// Log-spaced bins between x_min and x_max (both > 0).
  static BinnedScatter LogBins(double x_min, double x_max,
                               std::size_t num_bins);

  /// Linear bins between x_min and x_max.
  static BinnedScatter LinearBins(double x_min, double x_max,
                                  std::size_t num_bins);

  /// Adds one sample; samples outside [x_min, x_max] are clamped into
  /// the first/last bin (the paper keeps edge samples visible).
  void Add(double x, double y);

  /// Per-bin summaries. Empty bins are skipped.
  std::vector<ScatterBin> Bins() const;

  std::size_t sample_count() const { return sample_count_; }

 private:
  BinnedScatter(std::vector<double> edges, bool log_spaced);

  std::size_t BinIndex(double x) const;

  std::vector<double> edges_;  // ascending, size = num_bins + 1
  bool log_spaced_ = false;
  std::vector<std::vector<double>> bin_values_;
  std::size_t sample_count_ = 0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp into
/// the boundary buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double value);

  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t total() const { return total_; }
  double bucket_lo(std::size_t bucket) const;
  double bucket_hi(std::size_t bucket) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Gini coefficient of a non-negative sample, in [0, 1]. 0 = perfectly
/// even, (n-1)/n = one member carries everything. Used to quantify the
/// paper's load-concentration effect (Figs 8-9): how unevenly the
/// probe-answering burden falls across peers. Returns 0 for an empty or
/// all-zero sample (no load is trivially even). Throws on negative
/// values.
double Gini(std::vector<double> values);

/// Two-sample Kolmogorov-Smirnov statistic: the maximum vertical
/// distance between the two empirical CDFs, in [0, 1]. 0 = identical
/// distributions. Used to quantify "the predicted latency distribution
/// matches the measured latency distribution reasonably well" (Fig 5).
double KolmogorovSmirnov(std::vector<double> a, std::vector<double> b);

/// Median / min / max across repeated simulation runs — the paper plots
/// "median, minimum and maximum values across the three simulation
/// runs" in Figs 8-9.
struct RunSpread {
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;

  static RunSpread Of(const std::vector<double>& runs);
};

}  // namespace np::util
