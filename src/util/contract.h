// Determinism-contract annotations, consumed by tools/np_lint.
//
// Every marker expands to nothing: the annotations are a vocabulary
// for the static-analysis pass (tools/np_lint/np_lint.py), which
// enforces the numbered determinism rules in docs/ARCHITECTURE.md
// ("Determinism contract"). The linter walks src/, bench/, and tools/
// and computes reachability from the NP_REPORT_AFFECTING roots, so a
// nondeterminism hazard in a result-bearing path fails CI instead of
// waiting for a lucky byte-diff.
//
// Usage:
//
//   void RunScenario(...) {
//     NP_REPORT_AFFECTING();          // reachability root for np_lint
//     ...
//   }
//
//   NP_ORDER_INSENSITIVE("collected then sorted before use");
//   for (const auto& [rep, cluster] : levels_.back().clusters) { ... }
//
//   NP_LINT_SUPPRESS("static-state", "immutable after first call");
//   static const Table table = BuildTable();
//
// NP_ORDER_INSENSITIVE waives the unordered-iteration rule (NPL001)
// for the loop that follows; the reason string is mandatory and should
// say *why* iteration order cannot reach a report (canonical pattern:
// collect into a vector, then sort with a total tie-break).
//
// NP_LINT_SUPPRESS waives one named rule for the statement that
// follows. Rule names accepted today: "unordered-iter" (NPL001),
// "banned-call" (NPL002), "shared-rng" (NPL003), "static-state"
// (NPL004), "fp-reduction" (NPL005). Prefer fixing over suppressing;
// suppressions are grep-able and reviewed like baseline entries.
#pragma once

// Marks the function containing it as a report-affecting root: its
// output feeds a scenario/bench report that CI byte-diffs. np_lint
// applies the reachability-scoped rules (NPL001, NPL002) to every
// function reachable from any root.
#define NP_REPORT_AFFECTING() \
  static_assert(true, "np_lint reachability root")

// Waives NPL001 for the next loop. `reason` must be a string literal.
#define NP_ORDER_INSENSITIVE(reason) \
  static_assert(true, "np_lint: order-insensitive loop")

// Waives `rule` (a string literal, see list above) for the next
// statement. `reason` must be a string literal.
#define NP_LINT_SUPPRESS(rule, reason) \
  static_assert(true, "np_lint: suppressed finding")
