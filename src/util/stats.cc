#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace np::util {

double PercentileSorted(const std::vector<double>& sorted, double q) {
  NP_ENSURE(!sorted.empty(), "percentile of an empty sample");
  NP_ENSURE(q >= 0.0 && q <= 100.0, "percentile q must be in [0, 100]");
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  if (lo == hi) {
    return sorted[lo];
  }
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Percentile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return PercentileSorted(values, q);
}

Summary Summary::Of(std::vector<double> values) {
  NP_ENSURE(!values.empty(), "Summary of an empty sample");
  std::sort(values.begin(), values.end());
  Summary s;
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  s.p5 = PercentileSorted(values, 5);
  s.p25 = PercentileSorted(values, 25);
  s.median = PercentileSorted(values, 50);
  s.p75 = PercentileSorted(values, 75);
  s.p95 = PercentileSorted(values, 95);
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) {
    sq += (v - s.mean) * (v - s.mean);
  }
  s.stddev = values.size() > 1
                 ? std::sqrt(sq / static_cast<double>(values.size() - 1))
                 : 0.0;
  return s;
}

double Gini(std::vector<double> values) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  NP_ENSURE(values.front() >= 0.0, "Gini of a negative sample");
  const auto n = static_cast<double>(values.size());
  double sum = 0.0;
  double weighted = 0.0;  // sum of (rank+1) * x_(rank), ascending ranks
  for (std::size_t i = 0; i < values.size(); ++i) {
    sum += values[i];
    weighted += static_cast<double>(i + 1) * values[i];
  }
  if (sum <= 0.0) {
    return 0.0;
  }
  // G = (2 * sum_i i*x_(i)) / (n * sum) - (n + 1) / n, ranks 1-based.
  return 2.0 * weighted / (n * sum) - (n + 1.0) / n;
}

Cdf::Cdf(std::vector<double> values) : sorted_(std::move(values)) {
  NP_ENSURE(!sorted_.empty(), "Cdf of an empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::FractionAtOrBelow(double x) const {
  return static_cast<double>(CountAtOrBelow(x)) /
         static_cast<double>(sorted_.size());
}

std::size_t Cdf::CountAtOrBelow(double x) const {
  return static_cast<std::size_t>(
      std::upper_bound(sorted_.begin(), sorted_.end(), x) - sorted_.begin());
}

double Cdf::ValueAtQuantile(double q) const {
  NP_ENSURE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  return PercentileSorted(sorted_, q * 100.0);
}

BinnedScatter::BinnedScatter(std::vector<double> edges, bool log_spaced)
    : edges_(std::move(edges)), log_spaced_(log_spaced) {
  bin_values_.resize(edges_.size() - 1);
}

BinnedScatter BinnedScatter::LogBins(double x_min, double x_max,
                                     std::size_t num_bins) {
  NP_ENSURE(x_min > 0.0 && x_max > x_min, "LogBins requires 0 < x_min < x_max");
  NP_ENSURE(num_bins >= 1, "LogBins requires at least one bin");
  std::vector<double> edges(num_bins + 1);
  const double log_lo = std::log(x_min);
  const double log_hi = std::log(x_max);
  for (std::size_t i = 0; i <= num_bins; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(num_bins);
    edges[i] = std::exp(log_lo + t * (log_hi - log_lo));
  }
  return BinnedScatter(std::move(edges), /*log_spaced=*/true);
}

BinnedScatter BinnedScatter::LinearBins(double x_min, double x_max,
                                        std::size_t num_bins) {
  NP_ENSURE(x_max > x_min, "LinearBins requires x_min < x_max");
  NP_ENSURE(num_bins >= 1, "LinearBins requires at least one bin");
  std::vector<double> edges(num_bins + 1);
  for (std::size_t i = 0; i <= num_bins; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(num_bins);
    edges[i] = x_min + t * (x_max - x_min);
  }
  return BinnedScatter(std::move(edges), /*log_spaced=*/false);
}

std::size_t BinnedScatter::BinIndex(double x) const {
  if (x <= edges_.front()) {
    return 0;
  }
  if (x >= edges_.back()) {
    return bin_values_.size() - 1;
  }
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  const auto idx = static_cast<std::size_t>(it - edges_.begin());
  return idx - 1;
}

void BinnedScatter::Add(double x, double y) {
  bin_values_[BinIndex(x)].push_back(y);
  ++sample_count_;
}

std::vector<ScatterBin> BinnedScatter::Bins() const {
  std::vector<ScatterBin> out;
  for (std::size_t i = 0; i < bin_values_.size(); ++i) {
    if (bin_values_[i].empty()) {
      continue;
    }
    std::vector<double> values = bin_values_[i];
    std::sort(values.begin(), values.end());
    ScatterBin bin;
    bin.x_representative = log_spaced_
                               ? std::sqrt(edges_[i] * edges_[i + 1])
                               : 0.5 * (edges_[i] + edges_[i + 1]);
    bin.count = values.size();
    bin.p5 = PercentileSorted(values, 5);
    bin.p25 = PercentileSorted(values, 25);
    bin.median = PercentileSorted(values, 50);
    bin.p75 = PercentileSorted(values, 75);
    bin.p95 = PercentileSorted(values, 95);
    out.push_back(bin);
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  NP_ENSURE(hi > lo, "Histogram requires lo < hi");
  NP_ENSURE(buckets >= 1, "Histogram requires at least one bucket");
}

void Histogram::Add(double value) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>((value - lo_) / width);
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t bucket) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return bucket_lo(bucket + 1);
}

double KolmogorovSmirnov(std::vector<double> a, std::vector<double> b) {
  NP_ENSURE(!a.empty() && !b.empty(), "KS distance of an empty sample");
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double max_distance = 0.0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.size() && ib < b.size()) {
    // Evaluate both CDFs just after the next distinct jump point;
    // advancing past ties on both sides keeps equal samples at
    // distance zero.
    const double x = std::min(a[ia], b[ib]);
    while (ia < a.size() && a[ia] <= x) {
      ++ia;
    }
    while (ib < b.size() && b[ib] <= x) {
      ++ib;
    }
    const double fa = static_cast<double>(ia) / static_cast<double>(a.size());
    const double fb = static_cast<double>(ib) / static_cast<double>(b.size());
    max_distance = std::max(max_distance, std::abs(fa - fb));
  }
  return max_distance;
}

RunSpread RunSpread::Of(const std::vector<double>& runs) {
  NP_ENSURE(!runs.empty(), "RunSpread of zero runs");
  std::vector<double> sorted = runs;
  std::sort(sorted.begin(), sorted.end());
  RunSpread spread;
  spread.min = sorted.front();
  spread.max = sorted.back();
  spread.median = PercentileSorted(sorted, 50);
  return spread;
}

}  // namespace np::util
