#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.h"

namespace np::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  NP_ENSURE(!headers_.empty(), "Table requires at least one column");
}

void Table::AddRow(std::vector<std::string> cells) {
  NP_ENSURE(cells.size() == headers_.size(),
            "row arity must match the header");
  rows_.push_back(std::move(cells));
}

void Table::AddNumericRow(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) {
    row.push_back(FormatDouble(v, precision));
  }
  AddRow(std::move(row));
}

std::string Table::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  os << "hdr: ";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
       << headers_[c];
  }
  os << '\n';
  for (const auto& row : rows_) {
    os << "row: ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  }
  return os.str();
}

std::string FormatDouble(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace np::util
