#include "util/error.h"

#include <sstream>

namespace np::util {

void ThrowEnsureFailure(const char* expr, const char* file, int line,
                        const std::string& message) {
  std::ostringstream os;
  os << "NP_ENSURE failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw Error(os.str());
}

}  // namespace np::util
