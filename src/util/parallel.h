// Minimal deterministic fork-join parallelism for the simulation core.
//
// The hot loops in this codebase (Floyd-Warshall bands, per-query
// experiment batches) are embarrassingly parallel over an index range,
// with every iteration writing to disjoint storage. ParallelFor covers
// exactly that shape: static contiguous chunking over std::thread, no
// work stealing, no shared mutable state. Determinism is the caller's
// contract — iterations must not depend on execution order — and every
// call site here pairs it with per-index RNG streams or disjoint
// output slots so that results are bit-identical for any thread count.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/error.h"

namespace np::util {

/// Maps the user-facing thread knob to a worker count: 0 means "use
/// the hardware" (hardware_concurrency, at least 1), anything else is
/// taken literally. Negative values are a caller bug.
inline int ResolveThreadCount(int requested) {
  NP_ENSURE(requested >= 0, "thread count must be >= 0");
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Runs fn(i) for every i in [begin, end), split into at most
/// `num_threads` contiguous chunks (0 = hardware_concurrency). Runs
/// inline when one worker suffices. Exceptions thrown by fn are
/// rethrown in the calling thread (the first worker's, by index).
///
/// fn must be safe to call concurrently for distinct i and must not
/// depend on the order iterations execute in.
inline void ParallelFor(std::size_t begin, std::size_t end, int num_threads,
                        const std::function<void(std::size_t)>& fn) {
  if (begin >= end) {
    return;
  }
  const std::size_t total = end - begin;
  std::size_t workers =
      static_cast<std::size_t>(ResolveThreadCount(num_threads));
  if (workers > total) {
    workers = total;
  }
  if (workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) {
      fn(i);
    }
    return;
  }

  std::vector<std::exception_ptr> errors(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const std::size_t chunk = (total + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = lo + chunk < end ? lo + chunk : end;
    if (lo >= hi) {
      break;
    }
    threads.emplace_back([lo, hi, w, &fn, &errors] {
      try {
        for (std::size_t i = lo; i < hi; ++i) {
          fn(i);
        }
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (const std::exception_ptr& e : errors) {
    if (e) {
      std::rethrow_exception(e);
    }
  }
}

/// Serial, index-ordered sum over per-index slots — the blessed
/// floating-point reduction for parallel regions (determinism contract
/// rule 5, np_lint NPL005). Accumulating into a shared double inside a
/// ParallelFor body is both a data race and an order-dependent sum;
/// writing slots[i] and reducing here is bit-identical for any thread
/// count.
inline double DeterministicSum(const std::vector<double>& slots) {
  double total = 0.0;
  for (double v : slots) {
    total += v;
  }
  return total;
}

/// Fills one slot per index with fn(i) under ParallelFor, then returns
/// the serial DeterministicSum of the slots. The fn contract matches
/// ParallelFor's.
inline double ParallelSum(std::size_t begin, std::size_t end, int num_threads,
                          const std::function<double(std::size_t)>& fn) {
  std::vector<double> slots(end > begin ? end - begin : 0, 0.0);
  ParallelFor(begin, end, num_threads, [&slots, begin, &fn](std::size_t i) {
    slots[i - begin] = fn(i);
  });
  return DeterministicSum(slots);
}

}  // namespace np::util
