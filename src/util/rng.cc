#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_set>

namespace np::util {

namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Mix64(std::uint64_t x) {
  std::uint64_t state = x;
  return SplitMix64(state);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = SplitMix64(sm);
  }
  // xoshiro must not start from the all-zero state; splitmix64 cannot
  // produce four consecutive zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

Rng Rng::Fork(std::uint64_t tag) { return Rng(Mix64((*this)() ^ Mix64(tag))); }

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) double.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  NP_ENSURE(lo <= hi, "Uniform requires lo <= hi");
  return lo + (hi - lo) * NextDouble();
}

std::uint64_t Rng::NextUint64(std::uint64_t n) {
  NP_ENSURE(n > 0, "NextUint64 requires n > 0");
  // Lemire-style rejection: unbiased without division in the hot path.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) {
      return r % n;
    }
  }
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  NP_ENSURE(lo <= hi, "UniformInt requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(NextUint64(span));
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  spare_gaussian_ = radius * std::sin(angle);
  has_spare_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Gaussian(mu, sigma));
}

double Rng::Exponential(double mean) {
  NP_ENSURE(mean > 0.0, "Exponential requires mean > 0");
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::Pareto(double shape, double scale) {
  NP_ENSURE(shape > 0.0, "Pareto requires shape > 0");
  NP_ENSURE(scale > 0.0, "Pareto requires scale > 0");
  // Inverse-CDF: x_m * U^(-1/alpha) with U in (0, 1].
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return scale * std::pow(u, -1.0 / shape);
}

bool Rng::Bernoulli(double p) {
  const double clamped = std::clamp(p, 0.0, 1.0);
  return NextDouble() < clamped;
}

std::size_t Rng::Index(std::size_t size) {
  NP_ENSURE(size > 0, "Index requires a non-empty range");
  return static_cast<std::size_t>(NextUint64(size));
}

std::vector<std::size_t> Rng::Sample(std::size_t n, std::size_t k) {
  NP_ENSURE(k <= n, "Sample requires k <= n");
  // For small k relative to n, rejection sampling; otherwise a partial
  // Fisher-Yates over an index vector.
  if (k * 4 <= n) {
    std::unordered_set<std::size_t> chosen;
    std::vector<std::size_t> out;
    out.reserve(k);
    while (out.size() < k) {
      std::size_t candidate = Index(n);
      if (chosen.insert(candidate).second) {
        out.push_back(candidate);
      }
    }
    return out;
  }
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) {
    indices[i] = i;
  }
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + Index(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace np::util
