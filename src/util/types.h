// Common vocabulary types shared by every nearestpeer library.
//
// All latencies in this codebase are double milliseconds (`LatencyMs`);
// the paper mixes microseconds (intra-LAN, 100us = 0.1 ms) and
// milliseconds (everything else), so a single unit avoids conversion
// bugs at module boundaries.
#pragma once

#include <cstdint>
#include <limits>

namespace np {

/// Latency in milliseconds. 100 microseconds == 0.1.
using LatencyMs = double;

/// Index of a node (peer, host, DNS server...) inside one latency space
/// or topology. Always dense, 0-based.
using NodeId = std::int32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = -1;

// The implicit latency backends run worlds up to n = 10^5 and are
// designed with headroom for a few orders more; NodeId must stay a
// signed type (kInvalidNode is -1) wide enough to address them, and
// narrow enough that PairKey can pack two ids into 64 bits.
static_assert(std::numeric_limits<NodeId>::is_signed &&
                  std::numeric_limits<NodeId>::max() >= 100'000'000 &&
                  sizeof(NodeId) <= 4,
              "NodeId must be a signed 32-bit-packable type that "
              "addresses >= 1e8 nodes");

/// Sentinel for "unreachable / unmeasured" latency.
inline constexpr LatencyMs kInfiniteLatency =
    std::numeric_limits<LatencyMs>::infinity();

/// IPv4 address as a host-order 32-bit integer.
using Ipv4 = std::uint32_t;

/// Identifier of a router inside a topology (distinct from host NodeId).
using RouterId = std::int32_t;

inline constexpr RouterId kInvalidRouter = -1;

}  // namespace np
