// Minimal ASCII table renderer: every bench binary prints the rows /
// series of the paper figure it regenerates through this, so output is
// uniform and grep-able (`row:` prefix per data row).
#pragma once

#include <string>
#include <vector>

namespace np::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision. (Named
  /// distinctly — a brace list of string literals would otherwise match
  /// vector<double>'s iterator-pair constructor and become ambiguous.)
  void AddNumericRow(const std::vector<double>& cells, int precision = 4);

  /// Renders with aligned columns; each data line starts with "row: ".
  std::string Render() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for mixed rows).
std::string FormatDouble(double v, int precision = 4);

}  // namespace np::util
