#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>

#include "util/error.h"

namespace np::util {

namespace {

const char* TypeName(JsonValue::Type type) {
  switch (type) {
    case JsonValue::Type::kNull:
      return "null";
    case JsonValue::Type::kBool:
      return "bool";
    case JsonValue::Type::kNumber:
      return "number";
    case JsonValue::Type::kString:
      return "string";
    case JsonValue::Type::kArray:
      return "array";
    case JsonValue::Type::kObject:
      return "object";
  }
  return "?";
}

[[noreturn]] void ThrowType(JsonValue::Type want, JsonValue::Type got) {
  throw Error(std::string("json: expected ") + TypeName(want) + ", have " +
              TypeName(got));
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue value = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) {
      Fail("trailing characters after the JSON document");
    }
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw Error("json: " + message + " at line " + std::to_string(line) +
                ", column " + std::to_string(column));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool Consume(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  JsonValue ParseValue() {
    SkipWhitespace();
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        JsonValue value;
        value.type_ = JsonValue::Type::kString;
        value.string_ = ParseString();
        return value;
      }
      case 't':
      case 'f': {
        JsonValue value;
        value.type_ = JsonValue::Type::kBool;
        if (Consume("true")) {
          value.bool_ = true;
        } else if (Consume("false")) {
          value.bool_ = false;
        } else {
          Fail("invalid literal");
        }
        return value;
      }
      case 'n': {
        if (!Consume("null")) {
          Fail("invalid literal");
        }
        return JsonValue{};
      }
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue value;
    value.type_ = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      value.object_.emplace_back(std::move(key), ParseValue());
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return value;
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue value;
    value.type_ = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array_.push_back(ParseValue());
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return value;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        Fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          out.append(ParseUnicodeEscape());
          break;
        }
        default:
          Fail("unknown escape");
      }
    }
  }

  /// \uXXXX -> UTF-8 (surrogate pairs supported).
  std::string ParseUnicodeEscape() {
    const auto hex4 = [this]() -> std::uint32_t {
      if (pos_ + 4 > text_.size()) {
        Fail("truncated \\u escape");
      }
      std::uint32_t code = 0;
      for (int i = 0; i < 4; ++i) {
        const char h = text_[pos_++];
        code <<= 4;
        if (h >= '0' && h <= '9') {
          code |= static_cast<std::uint32_t>(h - '0');
        } else if (h >= 'a' && h <= 'f') {
          code |= static_cast<std::uint32_t>(h - 'a' + 10);
        } else if (h >= 'A' && h <= 'F') {
          code |= static_cast<std::uint32_t>(h - 'A' + 10);
        } else {
          Fail("invalid hex digit in \\u escape");
        }
      }
      return code;
    };
    std::uint32_t code = hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (!Consume("\\u")) {
        Fail("unpaired surrogate");
      }
      const std::uint32_t low = hex4();
      if (low < 0xDC00 || low > 0xDFFF) {
        Fail("invalid low surrogate");
      }
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      Fail("unpaired surrogate");
    }
    std::string utf8;
    if (code < 0x80) {
      utf8.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      utf8.push_back(static_cast<char>(0xC0 | (code >> 6)));
      utf8.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      utf8.push_back(static_cast<char>(0xE0 | (code >> 12)));
      utf8.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      utf8.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      utf8.push_back(static_cast<char>(0xF0 | (code >> 18)));
      utf8.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      utf8.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      utf8.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return utf8;
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected a value");
    }
    double parsed = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, parsed);
    if (ec != std::errc{} || end != text_.data() + pos_) {
      pos_ = start;
      Fail("malformed number");
    }
    JsonValue value;
    value.type_ = JsonValue::Type::kNumber;
    value.number_ = parsed;
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::Parse(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

bool JsonValue::AsBool() const {
  if (type_ != Type::kBool) {
    ThrowType(Type::kBool, type_);
  }
  return bool_;
}

double JsonValue::AsDouble() const {
  if (type_ != Type::kNumber) {
    ThrowType(Type::kNumber, type_);
  }
  return number_;
}

std::int64_t JsonValue::AsInt() const {
  const double d = AsDouble();
  const double rounded = std::nearbyint(d);
  if (rounded != d) {
    throw Error("json: expected an integer, have " + std::to_string(d));
  }
  return static_cast<std::int64_t>(rounded);
}

const std::string& JsonValue::AsString() const {
  if (type_ != Type::kString) {
    ThrowType(Type::kString, type_);
  }
  return string_;
}

std::size_t JsonValue::size() const {
  if (type_ == Type::kArray) {
    return array_.size();
  }
  if (type_ == Type::kObject) {
    return object_.size();
  }
  ThrowType(Type::kArray, type_);
}

const JsonValue& JsonValue::at(std::size_t index) const {
  if (type_ != Type::kArray) {
    ThrowType(Type::kArray, type_);
  }
  if (index >= array_.size()) {
    throw Error("json: array index " + std::to_string(index) +
                " out of range (size " + std::to_string(array_.size()) + ")");
  }
  return array_[index];
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::kArray) {
    ThrowType(Type::kArray, type_);
  }
  return array_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) {
    ThrowType(Type::kObject, type_);
  }
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* value = Find(key);
  if (value == nullptr) {
    throw Error("json: missing key \"" + key + "\"");
  }
  return *value;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::entries()
    const {
  if (type_ != Type::kObject) {
    ThrowType(Type::kObject, type_);
  }
  return object_;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* value = Find(key);
  return value == nullptr ? fallback : value->AsBool();
}

double JsonValue::GetDouble(const std::string& key, double fallback) const {
  const JsonValue* value = Find(key);
  return value == nullptr ? fallback : value->AsDouble();
}

std::int64_t JsonValue::GetInt(const std::string& key,
                               std::int64_t fallback) const {
  const JsonValue* value = Find(key);
  return value == nullptr ? fallback : value->AsInt();
}

std::uint64_t JsonValue::GetUint64(const std::string& key,
                                   std::uint64_t fallback) const {
  const JsonValue* value = Find(key);
  if (value == nullptr) {
    return fallback;
  }
  const std::int64_t v = value->AsInt();
  if (v < 0) {
    throw Error("json: key \"" + key + "\" must be non-negative");
  }
  return static_cast<std::uint64_t>(v);
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* value = Find(key);
  return value == nullptr ? fallback : value->AsString();
}

std::vector<double> JsonValue::GetDoubleArray(
    const std::string& key, std::vector<double> fallback) const {
  const JsonValue* value = Find(key);
  if (value == nullptr) {
    return fallback;
  }
  std::vector<double> out;
  out.reserve(value->items().size());
  for (const JsonValue& item : value->items()) {
    out.push_back(item.AsDouble());
  }
  return out;
}

}  // namespace np::util
