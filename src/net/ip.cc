#include "net/ip.h"

#include <sstream>

#include "util/error.h"

namespace np::net {

std::uint32_t PrefixOf(Ipv4 ip, int bits) {
  NP_ENSURE(bits >= 0 && bits <= 32, "prefix length must be in [0, 32]");
  if (bits == 0) {
    return 0;
  }
  return ip >> (32 - bits);
}

bool SamePrefix(Ipv4 a, Ipv4 b, int bits) {
  return PrefixOf(a, bits) == PrefixOf(b, bits);
}

std::string FormatIpv4(Ipv4 ip) {
  std::ostringstream os;
  os << ((ip >> 24) & 0xff) << '.' << ((ip >> 16) & 0xff) << '.'
     << ((ip >> 8) & 0xff) << '.' << (ip & 0xff);
  return os.str();
}

Ipv4 ParseIpv4(const std::string& text) {
  std::istringstream is(text);
  Ipv4 result = 0;
  for (int octet = 0; octet < 4; ++octet) {
    long value = -1;
    is >> value;
    if (is.fail() || value < 0 || value > 255) {
      throw util::Error("malformed IPv4 address: " + text);
    }
    result = (result << 8) | static_cast<Ipv4>(value);
    if (octet < 3) {
      char dot = 0;
      is >> dot;
      if (dot != '.') {
        throw util::Error("malformed IPv4 address: " + text);
      }
    }
  }
  char trailing = 0;
  if (is >> trailing) {
    throw util::Error("trailing characters in IPv4 address: " + text);
  }
  return result;
}

Ipv4 BlockBase(Ipv4 ip, int bits) {
  NP_ENSURE(bits >= 0 && bits <= 32, "prefix length must be in [0, 32]");
  if (bits == 0) {
    return 0;
  }
  const Ipv4 mask = bits == 32 ? ~Ipv4{0} : ~((Ipv4{1} << (32 - bits)) - 1);
  return ip & mask;
}

}  // namespace np::net
