// Knobs for the synthetic last-hop Internet.
//
// The generator reproduces the structure the paper's measurements rely
// on (§2, Fig 1): ISPs deploy PoPs in cities; aggregation-router trees
// fan out from each PoP's core router; end-networks (campus / corporate
// LANs) hang off aggregation routers; home users attach directly to
// access concentrators with large last-mile latencies. Inter-PoP
// latencies follow city geography.
//
// Presets at the bottom match the paper's two measurement populations:
// ~22k recursive DNS servers (§3.1) and ~156k Azureus peers (§3.2).
#pragma once

#include <cstdint>

namespace np::net {

struct TopologyConfig {
  // --- Geography -----------------------------------------------------------
  int num_cities = 40;
  /// Cities are placed uniformly on a square of this side (abstract km).
  double map_side = 5000.0;
  /// RTT ms per map unit of city distance (fiber + routing inflation).
  double ms_per_unit = 0.02;
  /// Fixed RTT overhead on any inter-PoP path, ms.
  double core_base_ms = 2.0;
  /// Multiplicative spread applied to inter-PoP latencies: U(1-x, 1+x).
  double core_jitter = 0.15;
  /// RTT between two PoPs in the same city, ms (metro interconnect).
  double same_city_pop_ms = 1.2;

  // --- Providers -----------------------------------------------------------
  int num_ases = 25;
  int min_pops_per_as = 2;
  int max_pops_per_as = 7;

  // --- Intra-PoP aggregation trees ------------------------------------------
  /// Router levels below each PoP core router (core = level 0).
  int agg_levels = 3;
  int agg_fanout_min = 2;
  int agg_fanout_max = 4;
  /// Per tree-link RTT, ms.
  double link_ms_min = 0.1;
  double link_ms_max = 1.2;
  /// Probability a router responds to traceroute at all.
  double router_respond_prob = 0.92;
  /// Probability a router's name carries a wrong city annotation
  /// (rockettrace parses names; misconfigured names mislead it).
  double router_misconfig_prob = 0.04;

  // --- End-networks ----------------------------------------------------------
  int endnets_per_pop_min = 4;
  int endnets_per_pop_max = 24;
  /// End-network gateway <-> attachment router RTT, ms (campus uplink).
  double endnet_access_ms_min = 0.3;
  double endnet_access_ms_max = 6.0;
  /// Intra-LAN RTT between two hosts of the same end-network, ms.
  double lan_ms_min = 0.05;
  double lan_ms_max = 0.4;
  /// Fraction of end-networks with working site-wide IP multicast.
  double multicast_enabled_prob = 0.4;

  // --- DNS server population (§3.1) ------------------------------------------
  int dns_recursive_hosts = 0;
  /// Fraction of DNS servers that get a same-domain partner.
  double dns_same_domain_pair_frac = 0.05;
  /// Of those partners, the fraction placed in a *different* city
  /// (the paper observed some same-domain pairs geographically split).
  double dns_domain_split_city_prob = 0.12;
  /// Per-server mean of the King processing lag (exponential), ms.
  double dns_lag_mean_ms_min = 0.2;
  double dns_lag_mean_ms_max = 2.8;

  // --- Azureus peer population (§3.2) ----------------------------------------
  int azureus_hosts = 0;
  /// Probability an Azureus peer sits inside an end-network; the rest
  /// are home users on access concentrators.
  double azureus_in_endnet_prob = 0.30;
  /// Home last-mile RTT, ms (DSL/cable spread; drives Fig 7's 5-100 ms
  /// hub-to-peer latencies).
  double home_access_ms_min = 5.0;
  double home_access_ms_max = 45.0;
  /// Responsiveness of Azureus peers (most peers answer neither TCP
  /// pings nor traceroutes; the paper kept 5904 of 156k).
  double azureus_tcp_respond_prob = 0.10;
  double azureus_trace_respond_prob = 0.08;
  /// Pareto shape for homes-per-concentrator (heavy tail produces the
  /// paper's 200+ member clusters).
  double concentrator_pareto_alpha = 1.1;

  // --- Addressing -------------------------------------------------------------
  /// Each AS owns a /as_block_bits block.
  int as_block_bits = 12;
  /// Each PoP gets a /pop_region_bits region inside its AS block.
  int pop_region_bits = 17;
  /// Each end-network gets one /24 (plus more on overflow).
  int endnet_prefix_bits = 24;
  /// Probability an end-network uses provider-independent space from a
  /// random other PoP's region (prefix noise for Fig 11).
  double endnet_foreign_prefix_prob = 0.12;
  /// Probability a home subscriber's address comes from a completely
  /// different AS's space: unbundled local loops / reseller ISPs put
  /// customers of one physical DSLAM into several providers' blocks.
  double home_reseller_prob = 0.18;

  // --- Vantage points (Table 1 analog) ---------------------------------------
  int num_vantage_points = 7;
};

/// ~22k recursive DNS servers for the §3.1 prediction study.
TopologyConfig DnsStudyConfig();

/// ~156k Azureus peers for the §3.2 clustering study. (Figs 6-7, 10-11.)
TopologyConfig AzureusStudyConfig();

/// Small world for unit tests: a few hundred hosts.
TopologyConfig SmallTestConfig();

}  // namespace np::net
