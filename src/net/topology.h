// The synthetic Internet: entity model, generation, routing and
// latency computation.
//
// Structure (paper Fig 1): each AS deploys PoPs in cities. A PoP has a
// core router (level 0) and a tree of aggregation routers below it.
// End-networks attach to aggregation routers through an access link;
// hosts inside an end-network see each other at LAN latency. Home
// users attach directly to leaf aggregation routers ("concentrators")
// with large last-mile latencies.
//
// Routing follows the paper's validated model (§2, §3.1): a message
// between two hosts climbs to their lowest common router — the PoP
// core if they share nothing lower, across the inter-PoP core if they
// are in different PoPs — then descends. Messages within an
// end-network never leave it.
#pragma once

#include <string>
#include <vector>

#include "net/topology_config.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/types.h"

namespace np::net {

enum class HostKind {
  kPlain,         // generic end-network host
  kDnsRecursive,  // §3.1 measurement subject
  kAzureusPeer,   // §3.2 measurement subject
  kVantage,       // measurement / PlanetLab analog (Table 1)
};

struct City {
  int id = -1;
  std::string name;
  double x = 0.0;
  double y = 0.0;
};

struct As {
  int id = -1;
  std::string name;
  /// Base address of this AS's /as_block_bits block.
  Ipv4 block_base = 0;
};

struct Pop {
  int id = -1;
  int as_id = -1;
  int city_id = -1;
  RouterId core_router = kInvalidRouter;
  /// Base address of this PoP's /pop_region_bits region.
  Ipv4 region_base = 0;
};

struct Router {
  RouterId id = kInvalidRouter;
  int pop_id = -1;
  /// 0 = PoP core; increasing toward the edge.
  int level = 0;
  RouterId parent = kInvalidRouter;
  /// RTT of the link to the parent router, ms (0 for the core).
  LatencyMs parent_link_ms = 0.0;
  std::string name;
  /// What rockettrace infers from the router's DNS name. Usually the
  /// truth; misconfigured names point at a wrong city.
  int annotated_as = -1;
  int annotated_city = -1;
  /// Whether the router ever answers traceroute probes.
  bool responds = true;
  /// True for leaf aggregation routers that terminate home last-miles.
  bool is_concentrator = false;
  /// Concentrators only: the neighborhood's typical last-mile RTT, ms.
  /// Subscribers of one DSLAM/CMTS share line technology and loop
  /// lengths, so their latencies cluster around this base.
  LatencyMs home_base_ms = 0.0;
};

struct EndNetwork {
  int id = -1;
  int pop_id = -1;
  /// The ISP aggregation router the network's uplink terminates at.
  RouterId attach_router = kInvalidRouter;
  /// The network's own border router; hosts sit behind it, and
  /// traceroutes into the network traverse it (the paper's "router
  /// that is further downstream to the DNS servers than the PoP").
  RouterId gateway_router = kInvalidRouter;
  /// Gateway <-> attachment router RTT, ms (the campus uplink).
  LatencyMs access_ms = 0.0;
  /// RTT between two hosts inside this network, ms.
  LatencyMs lan_ms = 0.0;
  bool multicast_enabled = false;
  /// Base of the /24 (or wider) block assigned to this network.
  Ipv4 prefix_base = 0;
};

struct Host {
  NodeId id = kInvalidNode;
  HostKind kind = HostKind::kPlain;
  /// End-network the host lives in, or -1 for home users.
  int endnet_id = -1;
  /// For home users: the concentrator they attach to. For end-network
  /// hosts: the network's gateway router.
  RouterId attach_router = kInvalidRouter;
  /// Host <-> attach_router RTT, ms (in-LAN for end-network hosts,
  /// last-mile for home users).
  LatencyMs access_ms = 0.0;
  int pop_id = -1;
  Ipv4 ip = 0;
  /// DNS domain id; servers sharing a domain cannot be King-measured
  /// (§3.1). -1 for non-DNS hosts.
  int domain_id = -1;
  /// Mean of this server's King processing lag (exponential), ms.
  double dns_lag_mean_ms = 0.0;
  bool responds_tcp = true;
  bool responds_traceroute = true;
};

/// One hop of a routed path, with the true cumulative RTT from the
/// source host to that router and back.
struct PathHop {
  RouterId router = kInvalidRouter;
  LatencyMs rtt_from_source_ms = 0.0;
};

class Topology {
 public:
  /// Generates a world; deterministic per (config, rng state).
  static Topology Generate(const TopologyConfig& config, util::Rng& rng);

  const TopologyConfig& config() const { return config_; }

  // Entity access ------------------------------------------------------------
  const std::vector<City>& cities() const { return cities_; }
  const std::vector<As>& ases() const { return ases_; }
  const std::vector<Pop>& pops() const { return pops_; }
  const std::vector<Router>& routers() const { return routers_; }
  const std::vector<EndNetwork>& endnets() const { return endnets_; }
  const std::vector<Host>& hosts() const { return hosts_; }

  const Host& host(NodeId id) const { return hosts_.at(ToIndex(id)); }
  const Router& router(RouterId id) const { return routers_.at(ToIndex(id)); }

  /// Hosts of the given kind, in id order.
  std::vector<NodeId> HostsOfKind(HostKind kind) const;

  /// The vantage hosts (kVantage), in id order — the Table 1 analog.
  const std::vector<NodeId>& vantage_hosts() const { return vantage_hosts_; }

  // Routing --------------------------------------------------------------------
  /// True end-to-end RTT between two hosts, ms (noise-free; the
  /// measurement tools add noise on top).
  LatencyMs LatencyBetween(NodeId a, NodeId b) const;

  /// RTT from a host to a router, ms. The router need not be on the
  /// host's own branch (the path then climbs to the common point).
  LatencyMs LatencyToRouter(NodeId host, RouterId router) const;

  /// The chain of routers from the host's attachment up to its PoP
  /// core, attachment first.
  std::vector<RouterId> UpChain(NodeId host) const;

  /// Deepest router shared by both hosts' up-chains, or kInvalidRouter
  /// if they share none (different PoPs).
  RouterId LowestCommonRouter(NodeId a, NodeId b) const;

  /// The full router path a -> b: a's up-chain to the meeting point,
  /// then down b's chain. Each hop carries the true cumulative RTT
  /// from `a`. Hosts in the same end-network have an empty path.
  std::vector<PathHop> RouterPath(NodeId a, NodeId b) const;

  /// Number of routers a message a -> b traverses (size of RouterPath).
  int RouterHopCount(NodeId a, NodeId b) const;

  /// True inter-PoP RTT (core router to core router), ms.
  LatencyMs InterPopLatency(int pop_a, int pop_b) const;

 private:
  Topology() = default;

  static std::size_t ToIndex(std::int32_t id) {
    NP_ENSURE(id >= 0, "negative entity id");
    return static_cast<std::size_t>(id);
  }

  /// RTT from host to its own PoP core, ms.
  LatencyMs LegToCore(NodeId host) const;

  /// RTT from host to a router on its own up-chain, ms; throws if the
  /// router is not on the chain.
  LatencyMs LegToChainRouter(NodeId host, RouterId router) const;

  /// Cumulative RTT from a router up to its PoP core.
  LatencyMs RouterToCore(RouterId router) const;

  TopologyConfig config_;
  std::vector<City> cities_;
  std::vector<As> ases_;
  std::vector<Pop> pops_;
  std::vector<Router> routers_;
  std::vector<EndNetwork> endnets_;
  std::vector<Host> hosts_;
  std::vector<NodeId> vantage_hosts_;
  /// Dense pop x pop RTT matrix (row-major, pops x pops).
  std::vector<LatencyMs> interpop_;
};

}  // namespace np::net
