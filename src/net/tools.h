// Simulated measurement tools over the synthetic topology.
//
// Each tool returns what its real counterpart would: noisy RTTs,
// partially responding traceroute hops with name-derived AS/city
// annotations (rockettrace), and King estimates between recursive DNS
// servers — including both bias sources the paper identifies in §3.1:
// server processing lag inflating small measurements and alternate
// paths deflating large ones.
#pragma once

#include <optional>
#include <vector>

#include "net/topology.h"
#include "util/rng.h"

namespace np::net {

struct NoiseConfig {
  /// Multiplicative Gaussian jitter applied to ping RTTs and to a
  /// traceroute as a whole (tools take the min of several probes, so
  /// the residual error is small).
  double rtt_jitter_frac = 0.004;
  /// Extra per-hop jitter within one traceroute. Hops of the same
  /// trace share the path and its congestion, so their RTTs are
  /// strongly correlated; only this small residual is independent.
  double trace_hop_jitter_frac = 0.004;
  /// Minimum reportable RTT, ms.
  double rtt_floor_ms = 0.02;
  /// Mean of the extra SYN-handling lag in a TCP ping (exponential).
  double tcp_syn_lag_mean_ms = 0.4;
  /// Chance a responding router answers one particular traceroute
  /// probe. Per-trace silence is what makes the same peer's last valid
  /// hop differ across vantage points — the paper's unique-upstream
  /// filter drops most responsive peers because of exactly this.
  double trace_per_probe_respond = 0.87;

  /// King measurement failure probability (lost recursion, rate
  /// limiting, ...).
  double king_fail_prob = 0.06;
  /// Occasional load spikes at the recursive servers: an extra
  /// exponential lag added with this probability (busy resolvers
  /// answer King queries late, inflating small measurements).
  double king_lag_spike_prob = 0.25;
  double king_lag_spike_mean_ms = 8.0;
  double king_jitter_frac = 0.09;
  /// Alternate-path shortcut model: some pairs see a shorter path
  /// than the common-router route (peering links, multihomed
  /// networks); the probability has a floor at every distance and
  /// grows with the path latency. DNS servers are well connected, so
  /// the effect is strong at large latencies (paper §3.1).
  double king_shortcut_base_prob = 0.3;
  double king_shortcut_base_ms = 15.0;
  double king_shortcut_scale_ms = 160.0;
  double king_shortcut_max_prob = 0.6;
  double king_shortcut_factor_lo = 0.2;
  double king_shortcut_factor_hi = 0.8;
};

struct TracerouteHop {
  RouterId router = kInvalidRouter;
  /// False renders as "* * *": no RTT, no annotation.
  bool responded = false;
  LatencyMs rtt_ms = 0.0;
  /// rockettrace's name-derived annotation (may be misconfigured).
  int annotated_as = -1;
  int annotated_city = -1;
};

struct TracerouteResult {
  std::vector<TracerouteHop> hops;
  bool dest_responded = false;
  LatencyMs dest_rtt_ms = 0.0;

  /// Index of the last responding hop, or -1 if none.
  int LastValidHop() const;
};

/// Merges repeated traces of the same path (rockettrace probes every
/// hop several times): a hop responds if it responded in either trace,
/// keeping the earlier measurement. Traces must cover the same router
/// sequence.
TracerouteResult MergeTraceroutes(const TracerouteResult& a,
                                  const TracerouteResult& b);

/// Stateful tool bundle; owns its noise RNG so measurement streams are
/// reproducible independently of topology generation.
class Tools {
 public:
  Tools(const Topology& topology, const NoiseConfig& noise, util::Rng rng);

  /// ICMP ping host -> host. Fails when the destination does not
  /// respond to probes.
  std::optional<LatencyMs> Ping(NodeId from, NodeId to);

  /// Ping host -> router. Fails for routers that never respond.
  std::optional<LatencyMs> PingRouter(NodeId from, RouterId router);

  /// TCP connect latency to the Azureus port (the paper's "TCP-ping").
  std::optional<LatencyMs> TcpPing(NodeId from, NodeId to);

  /// rockettrace: hop list with annotations.
  TracerouteResult Traceroute(NodeId from, NodeId to);

  /// King estimate of the RTT between two recursive DNS servers.
  /// Fails for same-domain pairs (the recursion is never forwarded)
  /// and sporadically otherwise.
  std::optional<LatencyMs> King(NodeId server_a, NodeId server_b);

  const Topology& topology() const { return *topology_; }

 private:
  LatencyMs Jitter(LatencyMs true_ms, double frac);

  const Topology* topology_;
  NoiseConfig noise_;
  util::Rng rng_;
};

}  // namespace np::net
