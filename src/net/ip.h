// IPv4 helpers for the §5 IP-prefix heuristic: prefix extraction,
// formatting, and block arithmetic used by the topology's address
// allocator.
#pragma once

#include <string>

#include "util/types.h"

namespace np::net {

/// The top `bits` bits of `ip`, right-aligned — two addresses share a
/// /bits prefix iff PrefixOf(a, bits) == PrefixOf(b, bits).
/// bits must be in [0, 32]; bits == 0 maps everything to prefix 0.
std::uint32_t PrefixOf(Ipv4 ip, int bits);

/// True iff the two addresses agree in their top `bits` bits.
bool SamePrefix(Ipv4 a, Ipv4 b, int bits);

/// Dotted-quad rendering ("10.1.2.3").
std::string FormatIpv4(Ipv4 ip);

/// Parses a dotted quad; throws np::util::Error on malformed input.
Ipv4 ParseIpv4(const std::string& text);

/// First address of the size-2^(32-bits) block containing `ip`.
Ipv4 BlockBase(Ipv4 ip, int bits);

}  // namespace np::net
