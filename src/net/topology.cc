#include "net/topology.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <unordered_map>

#include "net/ip.h"

namespace np::net {

namespace {

/// All allocations start here (11.0.0.0) — keeps generated addresses
/// out of the common private ranges for readability.
constexpr Ipv4 kAddressSpaceBase = 0x0B000000;

void ValidateConfig(const TopologyConfig& c) {
  NP_ENSURE(c.num_cities >= 1, "need at least one city");
  NP_ENSURE(c.num_ases >= 1, "need at least one AS");
  NP_ENSURE(c.min_pops_per_as >= 1 && c.max_pops_per_as >= c.min_pops_per_as,
            "invalid PoPs-per-AS range");
  NP_ENSURE(c.agg_levels >= 1, "need at least one aggregation level");
  NP_ENSURE(c.agg_fanout_min >= 1 && c.agg_fanout_max >= c.agg_fanout_min,
            "invalid aggregation fanout range");
  NP_ENSURE(c.endnets_per_pop_min >= 1 &&
                c.endnets_per_pop_max >= c.endnets_per_pop_min,
            "invalid end-networks-per-PoP range");
  NP_ENSURE(c.as_block_bits > 0 && c.as_block_bits < c.pop_region_bits &&
                c.pop_region_bits < c.endnet_prefix_bits &&
                c.endnet_prefix_bits <= 24,
            "address plan must nest: AS block > PoP region > end-network");
  NP_ENSURE(c.max_pops_per_as <= (1 << (c.pop_region_bits - c.as_block_bits)),
            "PoP regions do not fit in the AS block");
  NP_ENSURE(c.num_vantage_points >= 1, "need at least one vantage point");
  NP_ENSURE(c.ms_per_unit > 0.0 && c.map_side > 0.0, "invalid geography");
}

/// Pareto(alpha) sample with unit scale, capped for sanity.
double ParetoSample(util::Rng& rng, double alpha, double cap) {
  double u = 0.0;
  do {
    u = rng.NextDouble();
  } while (u <= 0.0);
  return std::min(std::pow(u, -1.0 / alpha), cap);
}

/// Generation-time per-PoP /24 block allocator.
class BlockAllocator {
 public:
  BlockAllocator(const TopologyConfig& config, std::size_t num_pops)
      : block_bits_(config.endnet_prefix_bits),
        blocks_per_pop_(1 << (config.endnet_prefix_bits -
                              config.pop_region_bits)),
        next_(num_pops, 0) {}

  /// Base address of a fresh block inside the PoP's region.
  Ipv4 AllocateBlock(const Pop& pop) {
    auto& next = next_[static_cast<std::size_t>(pop.id)];
    NP_ENSURE(next < blocks_per_pop_,
              "PoP address region exhausted; widen pop_region_bits");
    const Ipv4 base =
        pop.region_base +
        (static_cast<Ipv4>(next) << (32 - block_bits_));
    ++next;
    return base;
  }

 private:
  int block_bits_;
  int blocks_per_pop_;
  std::vector<int> next_;
};

/// Generation-time host-address allocator: hands out sequential host
/// addresses inside /24 blocks, fetching fresh blocks on overflow.
class HostAddressPool {
 public:
  explicit HostAddressPool(BlockAllocator& blocks) : blocks_(&blocks) {}

  Ipv4 Next(const Pop& pop, Ipv4& current_base, int& used) {
    if (used >= 254) {
      current_base = blocks_->AllocateBlock(pop);
      used = 0;
    }
    ++used;
    return current_base + static_cast<Ipv4>(used);
  }

 private:
  BlockAllocator* blocks_;
};

}  // namespace

TopologyConfig DnsStudyConfig() {
  TopologyConfig config;
  config.dns_recursive_hosts = 22000;
  return config;
}

TopologyConfig AzureusStudyConfig() {
  TopologyConfig config;
  config.azureus_hosts = 156658;
  return config;
}

TopologyConfig SmallTestConfig() {
  TopologyConfig config;
  config.num_cities = 8;
  config.num_ases = 4;
  config.min_pops_per_as = 1;
  config.max_pops_per_as = 3;
  config.agg_levels = 2;
  config.endnets_per_pop_min = 2;
  config.endnets_per_pop_max = 5;
  config.dns_recursive_hosts = 120;
  config.azureus_hosts = 300;
  config.azureus_tcp_respond_prob = 0.5;
  config.azureus_trace_respond_prob = 0.5;
  return config;
}

Topology Topology::Generate(const TopologyConfig& config, util::Rng& rng) {
  ValidateConfig(config);
  Topology t;
  t.config_ = config;

  // --- Cities ---------------------------------------------------------------
  t.cities_.resize(static_cast<std::size_t>(config.num_cities));
  for (int c = 0; c < config.num_cities; ++c) {
    City& city = t.cities_[static_cast<std::size_t>(c)];
    city.id = c;
    city.name = "city" + std::to_string(c);
    city.x = rng.Uniform(0.0, config.map_side);
    city.y = rng.Uniform(0.0, config.map_side);
  }

  // --- ASes and PoPs ----------------------------------------------------------
  t.ases_.resize(static_cast<std::size_t>(config.num_ases));
  for (int a = 0; a < config.num_ases; ++a) {
    As& as = t.ases_[static_cast<std::size_t>(a)];
    as.id = a;
    as.name = "AS" + std::to_string(6400 + a);
    as.block_base = kAddressSpaceBase +
                    (static_cast<Ipv4>(a) << (32 - config.as_block_bits));
    const int num_pops = static_cast<int>(
        rng.UniformInt(config.min_pops_per_as, config.max_pops_per_as));
    const auto pop_cities = rng.Sample(
        static_cast<std::size_t>(config.num_cities),
        static_cast<std::size_t>(
            std::min(num_pops, config.num_cities)));
    for (std::size_t k = 0; k < pop_cities.size(); ++k) {
      Pop pop;
      pop.id = static_cast<int>(t.pops_.size());
      pop.as_id = a;
      pop.city_id = static_cast<int>(pop_cities[k]);
      pop.region_base =
          as.block_base +
          (static_cast<Ipv4>(k) << (32 - config.pop_region_bits));
      t.pops_.push_back(pop);
    }
  }

  // --- Aggregation router trees ------------------------------------------------
  for (Pop& pop : t.pops_) {
    Router core;
    core.id = static_cast<RouterId>(t.routers_.size());
    core.pop_id = pop.id;
    core.level = 0;
    core.parent = kInvalidRouter;
    core.parent_link_ms = 0.0;
    core.annotated_as = pop.as_id;
    core.annotated_city = pop.city_id;
    core.responds = rng.Bernoulli(config.router_respond_prob);
    {
      std::ostringstream name;
      name << "cr0.pop" << pop.id << ".as" << pop.as_id << ".net";
      core.name = name.str();
    }
    pop.core_router = core.id;
    t.routers_.push_back(core);

    std::vector<RouterId> frontier{core.id};
    for (int level = 1; level <= config.agg_levels; ++level) {
      std::vector<RouterId> next_frontier;
      for (RouterId parent : frontier) {
        const int fanout = static_cast<int>(
            rng.UniformInt(config.agg_fanout_min, config.agg_fanout_max));
        for (int f = 0; f < fanout; ++f) {
          Router r;
          r.id = static_cast<RouterId>(t.routers_.size());
          r.pop_id = pop.id;
          r.level = level;
          r.parent = parent;
          r.parent_link_ms =
              rng.Uniform(config.link_ms_min, config.link_ms_max);
          r.annotated_as = pop.as_id;
          r.annotated_city = pop.city_id;
          if (rng.Bernoulli(config.router_misconfig_prob)) {
            r.annotated_city = static_cast<int>(
                rng.Index(static_cast<std::size_t>(config.num_cities)));
          }
          r.responds = rng.Bernoulli(config.router_respond_prob);
          r.is_concentrator = level == config.agg_levels;
          if (r.is_concentrator) {
            // The neighborhood's typical last-mile: exponential body
            // over the configured range so some concentrators serve
            // slow lines (Fig 7's 5-100 ms spread).
            const double span =
                config.home_access_ms_max - config.home_access_ms_min;
            r.home_base_ms =
                config.home_access_ms_min +
                std::min(rng.Exponential(span / 3.0), span * 0.8);
          }
          {
            std::ostringstream name;
            name << "ar" << level << '-' << f << ".pop" << pop.id << ".as"
                 << pop.as_id << ".net";
            r.name = name.str();
          }
          next_frontier.push_back(r.id);
          t.routers_.push_back(std::move(r));
        }
      }
      frontier = std::move(next_frontier);
    }
  }

  // --- Inter-PoP latency matrix ---------------------------------------------
  const std::size_t num_pops = t.pops_.size();
  t.interpop_.assign(num_pops * num_pops, 0.0);
  for (std::size_t i = 0; i < num_pops; ++i) {
    for (std::size_t j = i + 1; j < num_pops; ++j) {
      const City& ca = t.cities_[static_cast<std::size_t>(
          t.pops_[i].city_id)];
      const City& cb = t.cities_[static_cast<std::size_t>(
          t.pops_[j].city_id)];
      double base = 0.0;
      if (t.pops_[i].city_id == t.pops_[j].city_id) {
        base = config.same_city_pop_ms;
      } else {
        const double dist = std::hypot(ca.x - cb.x, ca.y - cb.y);
        base = config.core_base_ms + dist * config.ms_per_unit;
      }
      const double jittered =
          base * (1.0 + rng.Uniform(-config.core_jitter, config.core_jitter));
      t.interpop_[i * num_pops + j] = jittered;
      t.interpop_[j * num_pops + i] = jittered;
    }
  }

  // --- End-networks -------------------------------------------------------------
  BlockAllocator blocks(config, num_pops);
  std::vector<std::vector<RouterId>> pop_agg_routers(num_pops);
  std::vector<std::vector<RouterId>> pop_concentrators(num_pops);
  for (const Router& r : t.routers_) {
    if (r.level >= 1) {
      pop_agg_routers[static_cast<std::size_t>(r.pop_id)].push_back(r.id);
      if (r.is_concentrator) {
        pop_concentrators[static_cast<std::size_t>(r.pop_id)].push_back(r.id);
      }
    }
  }
  std::vector<std::vector<int>> pop_endnets(num_pops);
  for (const Pop& pop : t.pops_) {
    const int count = static_cast<int>(rng.UniformInt(
        config.endnets_per_pop_min, config.endnets_per_pop_max));
    const auto& aggs = pop_agg_routers[static_cast<std::size_t>(pop.id)];
    NP_ENSURE(!aggs.empty(), "PoP has no aggregation routers");
    for (int e = 0; e < count; ++e) {
      EndNetwork net;
      net.id = static_cast<int>(t.endnets_.size());
      net.pop_id = pop.id;
      net.attach_router = aggs[rng.Index(aggs.size())];
      net.access_ms =
          rng.Uniform(config.endnet_access_ms_min, config.endnet_access_ms_max);
      net.lan_ms = rng.Uniform(config.lan_ms_min, config.lan_ms_max);
      net.multicast_enabled = rng.Bernoulli(config.multicast_enabled_prob);
      // The network's own border router: a traceroute-visible hop
      // below the ISP attachment, carrying the campus uplink latency.
      {
        Router gw;
        gw.id = static_cast<RouterId>(t.routers_.size());
        gw.pop_id = pop.id;
        gw.level = t.routers_[ToIndex(net.attach_router)].level + 1;
        gw.parent = net.attach_router;
        gw.parent_link_ms = net.access_ms;
        gw.annotated_as = pop.as_id;
        gw.annotated_city = pop.city_id;
        if (rng.Bernoulli(config.router_misconfig_prob)) {
          gw.annotated_city = static_cast<int>(
              rng.Index(static_cast<std::size_t>(config.num_cities)));
        }
        gw.responds = rng.Bernoulli(config.router_respond_prob);
        gw.is_concentrator = false;
        {
          std::ostringstream name;
          name << "gw.net" << net.id << ".pop" << pop.id << ".as"
               << pop.as_id << ".net";
          gw.name = name.str();
        }
        net.gateway_router = gw.id;
        t.routers_.push_back(std::move(gw));
      }
      // Most networks use their PoP's address region; a few bring
      // provider-independent space allocated under a random other PoP.
      const Pop& address_pop =
          rng.Bernoulli(config.endnet_foreign_prefix_prob)
              ? t.pops_[rng.Index(num_pops)]
              : pop;
      net.prefix_base = blocks.AllocateBlock(address_pop);
      pop_endnets[static_cast<std::size_t>(pop.id)].push_back(net.id);
      t.endnets_.push_back(std::move(net));
    }
  }
  NP_ENSURE(!t.endnets_.empty(), "no end-networks generated");

  // Per-end-network host addressing state.
  HostAddressPool host_pool(blocks);
  std::vector<Ipv4> endnet_block(t.endnets_.size());
  std::vector<int> endnet_used(t.endnets_.size(), 0);
  for (std::size_t e = 0; e < t.endnets_.size(); ++e) {
    endnet_block[e] = t.endnets_[e].prefix_base;
  }

  const auto add_endnet_host = [&](int endnet_id, HostKind kind) -> Host& {
    const EndNetwork& net =
        t.endnets_[static_cast<std::size_t>(endnet_id)];
    Host h;
    h.id = static_cast<NodeId>(t.hosts_.size());
    h.kind = kind;
    h.endnet_id = endnet_id;
    h.attach_router = net.gateway_router;
    h.access_ms = rng.Uniform(0.02, 0.3);
    h.pop_id = net.pop_id;
    h.ip = host_pool.Next(t.pops_[static_cast<std::size_t>(net.pop_id)],
                          endnet_block[static_cast<std::size_t>(endnet_id)],
                          endnet_used[static_cast<std::size_t>(endnet_id)]);
    t.hosts_.push_back(std::move(h));
    return t.hosts_.back();
  };

  // --- Vantage hosts (Table 1 analog): distinct cities where possible ---------
  {
    std::vector<std::size_t> pop_order(num_pops);
    for (std::size_t i = 0; i < num_pops; ++i) {
      pop_order[i] = i;
    }
    rng.Shuffle(pop_order);
    std::set<int> used_cities;
    std::vector<std::size_t> chosen;
    for (std::size_t p : pop_order) {
      if (chosen.size() ==
          static_cast<std::size_t>(config.num_vantage_points)) {
        break;
      }
      if (used_cities.insert(t.pops_[p].city_id).second) {
        chosen.push_back(p);
      }
    }
    // Fewer cities than vantage points: reuse cities.
    for (std::size_t p : pop_order) {
      if (chosen.size() ==
          static_cast<std::size_t>(config.num_vantage_points)) {
        break;
      }
      if (std::find(chosen.begin(), chosen.end(), p) == chosen.end()) {
        chosen.push_back(p);
      }
    }
    // Fewer PoPs than vantage points (tiny test worlds): reuse PoPs.
    while (chosen.size() <
           static_cast<std::size_t>(config.num_vantage_points)) {
      chosen.push_back(pop_order[chosen.size() % pop_order.size()]);
    }
    for (std::size_t p : chosen) {
      const auto& nets = pop_endnets[p];
      NP_ENSURE(!nets.empty(), "vantage PoP has no end-network");
      Host& h = add_endnet_host(nets[rng.Index(nets.size())],
                                HostKind::kVantage);
      t.vantage_hosts_.push_back(h.id);
    }
  }

  // --- DNS recursive servers (§3.1 population) ---------------------------------
  if (config.dns_recursive_hosts > 0) {
    int next_domain = 0;
    const int num_pairs = static_cast<int>(
        config.dns_same_domain_pair_frac * config.dns_recursive_hosts / 2.0);
    int created = 0;
    const auto random_endnet = [&]() -> int {
      return static_cast<int>(rng.Index(t.endnets_.size()));
    };
    const auto finish_dns_host = [&](Host& h) {
      h.domain_id = next_domain;
      h.dns_lag_mean_ms = rng.Uniform(config.dns_lag_mean_ms_min,
                                      config.dns_lag_mean_ms_max);
      h.responds_tcp = true;
      h.responds_traceroute = true;
    };
    for (int pair = 0; pair < num_pairs &&
                       created + 2 <= config.dns_recursive_hosts;
         ++pair) {
      const int endnet_a = random_endnet();
      Host& a = add_endnet_host(endnet_a, HostKind::kDnsRecursive);
      finish_dns_host(a);
      // Partner: usually co-located, sometimes in a different network
      // (the paper saw geographically split same-domain pairs).
      const int endnet_b = rng.Bernoulli(config.dns_domain_split_city_prob)
                               ? random_endnet()
                               : endnet_a;
      Host& b = add_endnet_host(endnet_b, HostKind::kDnsRecursive);
      finish_dns_host(b);
      ++next_domain;
      created += 2;
    }
    for (; created < config.dns_recursive_hosts; ++created) {
      Host& h = add_endnet_host(random_endnet(), HostKind::kDnsRecursive);
      finish_dns_host(h);
      ++next_domain;
    }
  }

  // --- Azureus peers (§3.2 population) -----------------------------------------
  if (config.azureus_hosts > 0) {
    // Heavy-tailed concentrator weights: a few access routers serve
    // very many subscribers (DSLAM/BRAS concentration), which is what
    // produces the paper's 200+ peer clusters.
    std::vector<RouterId> concentrators;
    std::vector<double> cumulative;
    double total = 0.0;
    for (std::size_t p = 0; p < num_pops; ++p) {
      for (RouterId r : pop_concentrators[p]) {
        concentrators.push_back(r);
        total += ParetoSample(rng, t.config_.concentrator_pareto_alpha, 400.0);
        cumulative.push_back(total);
      }
    }
    NP_ENSURE(!concentrators.empty(), "no concentrators generated");

    // Home-user address pools: dynamic pools span the whole PoP (a
    // subscriber's /24 does not identify their concentrator), and
    // reseller ISPs hand out space from unrelated ASes entirely.
    struct PoolBlock {
      Ipv4 base = 0;
      int used = 0;
    };
    std::vector<std::vector<PoolBlock>> home_pools(num_pops);
    const auto alloc_home_ip = [&](const Pop& pop) -> Ipv4 {
      auto& pools = home_pools[static_cast<std::size_t>(pop.id)];
      std::vector<std::size_t> with_room;
      for (std::size_t i = 0; i < pools.size(); ++i) {
        if (pools[i].used < 254) {
          with_room.push_back(i);
        }
      }
      // Open a fresh /24 when full, or occasionally anyway so pools
      // stay scattered across the region.
      if (with_room.empty() ||
          (pools.size() < 48 && rng.Bernoulli(0.02))) {
        pools.push_back(PoolBlock{blocks.AllocateBlock(pop), 0});
        with_room.push_back(pools.size() - 1);
      }
      PoolBlock& block = pools[with_room[rng.Index(with_room.size())]];
      ++block.used;
      return block.base + static_cast<Ipv4>(block.used);
    };

    for (int i = 0; i < config.azureus_hosts; ++i) {
      if (rng.Bernoulli(config.azureus_in_endnet_prob)) {
        Host& h = add_endnet_host(
            static_cast<int>(rng.Index(t.endnets_.size())),
            HostKind::kAzureusPeer);
        h.responds_tcp = rng.Bernoulli(config.azureus_tcp_respond_prob);
        h.responds_traceroute =
            rng.Bernoulli(config.azureus_trace_respond_prob);
        continue;
      }
      // Home user on a weighted concentrator.
      const double pick = rng.Uniform(0.0, total);
      const std::size_t c = static_cast<std::size_t>(
          std::lower_bound(cumulative.begin(), cumulative.end(), pick) -
          cumulative.begin());
      const Router& conc =
          t.routers_[static_cast<std::size_t>(concentrators[c])];
      Host h;
      h.id = static_cast<NodeId>(t.hosts_.size());
      h.kind = HostKind::kAzureusPeer;
      h.endnet_id = -1;
      h.attach_router = conc.id;
      // Last-mile clusters around the concentrator's neighborhood
      // base (shared line technology / loop lengths); the residual
      // spread is what the paper's factor-1.5 pruning cuts on.
      h.access_ms = std::clamp(conc.home_base_ms * rng.Uniform(0.75, 1.55),
                               config.home_access_ms_min,
                               config.home_access_ms_max);
      h.pop_id = conc.pop_id;
      const Pop& address_pop =
          rng.Bernoulli(config.home_reseller_prob)
              ? t.pops_[rng.Index(num_pops)]
              : t.pops_[static_cast<std::size_t>(conc.pop_id)];
      h.ip = alloc_home_ip(address_pop);
      h.responds_tcp = rng.Bernoulli(config.azureus_tcp_respond_prob);
      h.responds_traceroute =
          rng.Bernoulli(config.azureus_trace_respond_prob);
      t.hosts_.push_back(std::move(h));
    }
  }

  return t;
}

std::vector<NodeId> Topology::HostsOfKind(HostKind kind) const {
  std::vector<NodeId> out;
  for (const Host& h : hosts_) {
    if (h.kind == kind) {
      out.push_back(h.id);
    }
  }
  return out;
}

LatencyMs Topology::RouterToCore(RouterId router) const {
  LatencyMs total = 0.0;
  RouterId r = router;
  while (r != kInvalidRouter) {
    const Router& rt = routers_[ToIndex(r)];
    total += rt.parent_link_ms;
    r = rt.parent;
  }
  return total;
}

std::vector<RouterId> Topology::UpChain(NodeId host_id) const {
  const Host& h = host(host_id);
  std::vector<RouterId> chain;
  RouterId r = h.attach_router;
  while (r != kInvalidRouter) {
    chain.push_back(r);
    r = routers_[ToIndex(r)].parent;
  }
  return chain;
}

LatencyMs Topology::LegToChainRouter(NodeId host_id, RouterId target) const {
  const Host& h = host(host_id);
  LatencyMs leg = h.access_ms;
  RouterId r = h.attach_router;
  while (r != kInvalidRouter) {
    if (r == target) {
      return leg;
    }
    const Router& rt = routers_[ToIndex(r)];
    leg += rt.parent_link_ms;
    r = rt.parent;
  }
  NP_ENSURE(false, "router is not on the host's up-chain");
  return 0.0;
}

LatencyMs Topology::LegToCore(NodeId host_id) const {
  const Host& h = host(host_id);
  return LegToChainRouter(host_id,
                          pops_[ToIndex(h.pop_id)].core_router);
}

namespace {
/// Aggregation chains are short (agg levels + gateway); a fixed buffer
/// keeps the hot paths allocation-free.
constexpr int kMaxChainDepth = 24;
}  // namespace

RouterId Topology::LowestCommonRouter(NodeId a, NodeId b) const {
  const Host& ha = host(a);
  const Host& hb = host(b);
  if (ha.pop_id != hb.pop_id) {
    return kInvalidRouter;
  }
  RouterId chain_a[kMaxChainDepth];
  RouterId chain_b[kMaxChainDepth];
  int len_a = 0;
  for (RouterId r = ha.attach_router; r != kInvalidRouter;
       r = routers_[ToIndex(r)].parent) {
    NP_ENSURE(len_a < kMaxChainDepth, "chain deeper than expected");
    chain_a[len_a++] = r;
  }
  int len_b = 0;
  for (RouterId r = hb.attach_router; r != kInvalidRouter;
       r = routers_[ToIndex(r)].parent) {
    NP_ENSURE(len_b < kMaxChainDepth, "chain deeper than expected");
    chain_b[len_b++] = r;
  }
  // Walk both chains from the core downwards while they agree.
  RouterId common = kInvalidRouter;
  int ia = len_a - 1;
  int ib = len_b - 1;
  while (ia >= 0 && ib >= 0 && chain_a[ia] == chain_b[ib]) {
    common = chain_a[ia];
    --ia;
    --ib;
  }
  return common;
}

LatencyMs Topology::InterPopLatency(int pop_a, int pop_b) const {
  NP_ENSURE(pop_a >= 0 && pop_a < static_cast<int>(pops_.size()) &&
                pop_b >= 0 && pop_b < static_cast<int>(pops_.size()),
            "pop id out of range");
  if (pop_a == pop_b) {
    return 0.0;
  }
  return interpop_[static_cast<std::size_t>(pop_a) * pops_.size() +
                   static_cast<std::size_t>(pop_b)];
}

LatencyMs Topology::LatencyBetween(NodeId a, NodeId b) const {
  if (a == b) {
    return 0.0;
  }
  const Host& ha = host(a);
  const Host& hb = host(b);
  if (ha.endnet_id >= 0 && ha.endnet_id == hb.endnet_id) {
    return endnets_[ToIndex(ha.endnet_id)].lan_ms;
  }
  if (ha.pop_id == hb.pop_id) {
    const RouterId lca = LowestCommonRouter(a, b);
    NP_ENSURE(lca != kInvalidRouter, "same PoP must share the core router");
    return LegToChainRouter(a, lca) + LegToChainRouter(b, lca);
  }
  return LegToCore(a) + InterPopLatency(ha.pop_id, hb.pop_id) + LegToCore(b);
}

LatencyMs Topology::LatencyToRouter(NodeId host_id, RouterId target) const {
  const Host& h = host(host_id);
  const Router& rt = routers_[ToIndex(target)];
  if (rt.pop_id == h.pop_id) {
    // Deepest common point of the host's chain and the router's chain.
    RouterId host_chain[kMaxChainDepth];
    RouterId router_chain[kMaxChainDepth];
    int len_h = 0;
    for (RouterId r = h.attach_router; r != kInvalidRouter;
         r = routers_[ToIndex(r)].parent) {
      NP_ENSURE(len_h < kMaxChainDepth, "chain deeper than expected");
      host_chain[len_h++] = r;
    }
    int len_r = 0;
    for (RouterId r = target; r != kInvalidRouter;
         r = routers_[ToIndex(r)].parent) {
      NP_ENSURE(len_r < kMaxChainDepth, "chain deeper than expected");
      router_chain[len_r++] = r;
    }
    RouterId common = kInvalidRouter;
    int ia = len_h - 1;
    int ib = len_r - 1;
    while (ia >= 0 && ib >= 0 && host_chain[ia] == router_chain[ib]) {
      common = host_chain[ia];
      --ia;
      --ib;
    }
    NP_ENSURE(common != kInvalidRouter, "same PoP must share the core");
    const LatencyMs down = RouterToCore(target) - RouterToCore(common);
    return LegToChainRouter(host_id, common) + down;
  }
  return LegToCore(host_id) + InterPopLatency(h.pop_id, rt.pop_id) +
         RouterToCore(target);
}

std::vector<PathHop> Topology::RouterPath(NodeId a, NodeId b) const {
  std::vector<PathHop> path;
  if (a == b) {
    return path;
  }
  const Host& ha = host(a);
  const Host& hb = host(b);
  if (ha.endnet_id >= 0 && ha.endnet_id == hb.endnet_id) {
    return path;  // stays inside the end-network
  }
  const std::vector<RouterId> chain_a = UpChain(a);
  std::vector<RouterId> chain_b = UpChain(b);

  if (ha.pop_id == hb.pop_id) {
    const RouterId lca = LowestCommonRouter(a, b);
    for (RouterId r : chain_a) {
      path.push_back(PathHop{r, LegToChainRouter(a, r)});
      if (r == lca) {
        break;
      }
    }
    // Descend b's chain below the LCA.
    std::vector<RouterId> down;
    for (RouterId r : chain_b) {
      if (r == lca) {
        break;
      }
      down.push_back(r);
    }
    const LatencyMs to_lca = LegToChainRouter(a, lca);
    const LatencyMs lca_to_core = RouterToCore(lca);
    for (auto it = down.rbegin(); it != down.rend(); ++it) {
      path.push_back(
          PathHop{*it, to_lca + (RouterToCore(*it) - lca_to_core)});
    }
    return path;
  }

  // Different PoPs: full climb, inter-PoP hop, full descent.
  for (RouterId r : chain_a) {
    path.push_back(PathHop{r, LegToChainRouter(a, r)});
  }
  const LatencyMs across =
      LegToCore(a) + InterPopLatency(ha.pop_id, hb.pop_id);
  for (auto it = chain_b.rbegin(); it != chain_b.rend(); ++it) {
    path.push_back(PathHop{*it, across + RouterToCore(*it)});
  }
  return path;
}

int Topology::RouterHopCount(NodeId a, NodeId b) const {
  return static_cast<int>(RouterPath(a, b).size());
}

}  // namespace np::net
