#include "net/tools.h"

#include <algorithm>
#include <cmath>

namespace np::net {

int TracerouteResult::LastValidHop() const {
  for (int i = static_cast<int>(hops.size()) - 1; i >= 0; --i) {
    if (hops[static_cast<std::size_t>(i)].responded) {
      return i;
    }
  }
  return -1;
}

TracerouteResult MergeTraceroutes(const TracerouteResult& a,
                                  const TracerouteResult& b) {
  NP_ENSURE(a.hops.size() == b.hops.size(),
            "cannot merge traces of different paths");
  TracerouteResult merged = a;
  for (std::size_t i = 0; i < merged.hops.size(); ++i) {
    NP_ENSURE(a.hops[i].router == b.hops[i].router,
              "cannot merge traces of different paths");
    if (!merged.hops[i].responded && b.hops[i].responded) {
      merged.hops[i] = b.hops[i];
    }
  }
  if (!merged.dest_responded && b.dest_responded) {
    merged.dest_responded = true;
    merged.dest_rtt_ms = b.dest_rtt_ms;
  }
  return merged;
}

Tools::Tools(const Topology& topology, const NoiseConfig& noise,
             util::Rng rng)
    : topology_(&topology), noise_(noise), rng_(rng) {}

LatencyMs Tools::Jitter(LatencyMs true_ms, double frac) {
  const double jittered = true_ms * (1.0 + rng_.Gaussian(0.0, frac));
  return std::max(jittered, noise_.rtt_floor_ms);
}

std::optional<LatencyMs> Tools::Ping(NodeId from, NodeId to) {
  const Host& dest = topology_->host(to);
  if (!dest.responds_traceroute) {
    return std::nullopt;
  }
  return Jitter(topology_->LatencyBetween(from, to), noise_.rtt_jitter_frac);
}

std::optional<LatencyMs> Tools::PingRouter(NodeId from, RouterId router) {
  const Router& r = topology_->router(router);
  if (!r.responds) {
    return std::nullopt;
  }
  return Jitter(topology_->LatencyToRouter(from, router),
                noise_.rtt_jitter_frac);
}

std::optional<LatencyMs> Tools::TcpPing(NodeId from, NodeId to) {
  const Host& dest = topology_->host(to);
  if (!dest.responds_tcp) {
    return std::nullopt;
  }
  const LatencyMs base =
      Jitter(topology_->LatencyBetween(from, to), noise_.rtt_jitter_frac);
  return base + rng_.Exponential(noise_.tcp_syn_lag_mean_ms);
}

TracerouteResult Tools::Traceroute(NodeId from, NodeId to) {
  TracerouteResult result;
  const auto path = topology_->RouterPath(from, to);
  // All hops of one trace share the path (and its congestion state),
  // so they see one common multiplicative factor plus a small per-hop
  // residual. This is what makes consecutive-hop RTT differences
  // meaningful, as the paper's §5 adjacency graph requires.
  const double trace_factor =
      1.0 + rng_.Gaussian(0.0, noise_.rtt_jitter_frac);
  const auto hop_rtt = [&](LatencyMs true_ms) {
    const double v = true_ms * trace_factor *
                     (1.0 + rng_.Gaussian(0.0, noise_.trace_hop_jitter_frac));
    return std::max(v, noise_.rtt_floor_ms);
  };
  result.hops.reserve(path.size());
  for (const PathHop& hop : path) {
    const Router& r = topology_->router(hop.router);
    TracerouteHop out;
    out.router = hop.router;
    out.responded =
        r.responds && rng_.Bernoulli(noise_.trace_per_probe_respond);
    if (out.responded) {
      out.rtt_ms = hop_rtt(hop.rtt_from_source_ms);
      out.annotated_as = r.annotated_as;
      out.annotated_city = r.annotated_city;
    }
    result.hops.push_back(out);
  }
  const Host& dest = topology_->host(to);
  result.dest_responded = dest.responds_traceroute;
  if (result.dest_responded) {
    result.dest_rtt_ms = hop_rtt(topology_->LatencyBetween(from, to));
  }
  return result;
}

std::optional<LatencyMs> Tools::King(NodeId server_a, NodeId server_b) {
  const Host& a = topology_->host(server_a);
  const Host& b = topology_->host(server_b);
  NP_ENSURE(a.kind == HostKind::kDnsRecursive &&
                b.kind == HostKind::kDnsRecursive,
            "King requires DNS servers");
  if (a.domain_id == b.domain_id) {
    // Same-domain servers are authoritative for the same names; the
    // recursive query is answered locally and never forwarded (§3.1).
    return std::nullopt;
  }
  if (rng_.Bernoulli(noise_.king_fail_prob)) {
    return std::nullopt;
  }
  LatencyMs true_ms = topology_->LatencyBetween(server_a, server_b);
  // Alternate paths bypass the common upstream router with a floor
  // probability plus a component growing in the path latency.
  const double shortcut_prob = std::clamp(
      noise_.king_shortcut_base_prob +
          (true_ms - noise_.king_shortcut_base_ms) /
              noise_.king_shortcut_scale_ms,
      0.0, noise_.king_shortcut_max_prob);
  if (rng_.Bernoulli(shortcut_prob)) {
    true_ms *= rng_.Uniform(noise_.king_shortcut_factor_lo,
                            noise_.king_shortcut_factor_hi);
  }
  // Processing lag at both servers inflates the estimate; dominant for
  // nearby pairs. Busy resolvers occasionally add a large spike.
  LatencyMs lag = rng_.Exponential(a.dns_lag_mean_ms) +
                  rng_.Exponential(b.dns_lag_mean_ms);
  if (rng_.Bernoulli(noise_.king_lag_spike_prob)) {
    lag += rng_.Exponential(noise_.king_lag_spike_mean_ms);
  }
  return Jitter(true_ms, noise_.king_jitter_frac) + lag;
}

}  // namespace np::net
