// Adapter exposing a synthetic-Internet topology as a LatencySpace, so
// the §5 mechanisms and the classic nearest-peer algorithms can run on
// the same host population the measurement studies use.
#pragma once

#include "core/latency_space.h"
#include "net/topology.h"

namespace np::mech {

class TopologySpace final : public core::LatencySpace {
 public:
  explicit TopologySpace(const net::Topology& topology)
      : topology_(&topology) {}

  NodeId size() const override {
    return static_cast<NodeId>(topology_->hosts().size());
  }

  LatencyMs Latency(NodeId a, NodeId b) const override {
    return topology_->LatencyBetween(a, b);
  }

  const net::Topology& topology() const { return *topology_; }

 private:
  const net::Topology* topology_;
};

}  // namespace np::mech
