#include "mech/local_search.h"

#include <algorithm>

namespace np::mech {

bool MulticastBootstrap::RegisterPeer(NodeId peer) {
  const net::Host& h = topology_->host(peer);
  if (h.endnet_id < 0) {
    return false;
  }
  by_endnet_[h.endnet_id].push_back(peer);
  ++registered_;
  return true;
}

std::vector<NodeId> MulticastBootstrap::Search(NodeId joiner) const {
  const net::Host& h = topology_->host(joiner);
  if (h.endnet_id < 0) {
    return {};
  }
  const net::EndNetwork& net =
      topology_->endnets()[static_cast<std::size_t>(h.endnet_id)];
  if (!net.multicast_enabled) {
    return {};
  }
  const auto it = by_endnet_.find(h.endnet_id);
  if (it == by_endnet_.end()) {
    return {};
  }
  std::vector<NodeId> out;
  for (NodeId peer : it->second) {
    if (peer != joiner) {
      out.push_back(peer);
    }
  }
  return out;
}

EndNetworkRegistry::EndNetworkRegistry(const net::Topology& topology,
                                       double deploy_prob,
                                       int large_network_hosts,
                                       util::Rng& rng)
    : topology_(&topology) {
  // Count hosts per end-network to bias deployment toward large sites.
  std::unordered_map<int, int> host_count;
  for (const net::Host& h : topology.hosts()) {
    if (h.endnet_id >= 0) {
      ++host_count[h.endnet_id];
    }
  }
  for (const net::EndNetwork& net : topology.endnets()) {
    double p = deploy_prob;
    const auto it = host_count.find(net.id);
    if (it != host_count.end() && it->second >= large_network_hosts) {
      p = std::min(1.0, 2.0 * p);
    }
    if (rng.Bernoulli(p)) {
      deployed_.insert(net.id);
    }
  }
}

bool EndNetworkRegistry::HasRegistry(int endnet_id) const {
  return deployed_.count(endnet_id) > 0;
}

bool EndNetworkRegistry::RegisterPeer(NodeId peer) {
  const net::Host& h = topology_->host(peer);
  if (h.endnet_id < 0 || !HasRegistry(h.endnet_id)) {
    return false;
  }
  members_[h.endnet_id].push_back(peer);
  return true;
}

std::vector<NodeId> EndNetworkRegistry::Query(NodeId joiner) const {
  const net::Host& h = topology_->host(joiner);
  if (h.endnet_id < 0 || !HasRegistry(h.endnet_id)) {
    return {};
  }
  const auto it = members_.find(h.endnet_id);
  if (it == members_.end()) {
    return {};
  }
  std::vector<NodeId> out;
  for (NodeId peer : it->second) {
    if (peer != joiner) {
      out.push_back(peer);
    }
  }
  return out;
}

}  // namespace np::mech
