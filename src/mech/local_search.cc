#include "mech/local_search.h"

#include <algorithm>

namespace np::mech {

namespace {

/// Swap-and-pop removal from an end-network member list, fixing the
/// moved peer's slot. Shared by both local-search directories.
bool RemoveFromEndnetList(std::unordered_map<int, std::vector<NodeId>>& lists,
                          std::unordered_map<NodeId, std::size_t>& slots,
                          int endnet_id, NodeId peer) {
  const auto sit = slots.find(peer);
  if (sit == slots.end()) {
    return false;
  }
  auto& list = lists.at(endnet_id);
  const std::size_t position = sit->second;
  const std::size_t last = list.size() - 1;
  if (position != last) {
    list[position] = list[last];
    slots[list[position]] = position;
  }
  list.pop_back();
  slots.erase(sit);
  if (list.empty()) {
    lists.erase(endnet_id);
  }
  return true;
}

}  // namespace

bool MulticastBootstrap::RegisterPeer(NodeId peer) {
  const net::Host& h = topology_->host(peer);
  if (h.endnet_id < 0 || slot_.count(peer) > 0) {
    return false;  // homeless, or already registered (a duplicate list
                   // entry would outlive its slot record)
  }
  auto& list = by_endnet_[h.endnet_id];
  slot_[peer] = list.size();
  list.push_back(peer);
  ++registered_;
  return true;
}

bool MulticastBootstrap::UnregisterPeer(NodeId peer) {
  const net::Host& h = topology_->host(peer);
  if (h.endnet_id < 0 ||
      !RemoveFromEndnetList(by_endnet_, slot_, h.endnet_id, peer)) {
    return false;
  }
  --registered_;
  return true;
}

std::vector<NodeId> MulticastBootstrap::Search(NodeId joiner) const {
  const net::Host& h = topology_->host(joiner);
  if (h.endnet_id < 0) {
    return {};
  }
  const net::EndNetwork& net =
      topology_->endnets()[static_cast<std::size_t>(h.endnet_id)];
  if (!net.multicast_enabled) {
    return {};
  }
  const auto it = by_endnet_.find(h.endnet_id);
  if (it == by_endnet_.end()) {
    return {};
  }
  std::vector<NodeId> out;
  for (NodeId peer : it->second) {
    if (peer != joiner) {
      out.push_back(peer);
    }
  }
  return out;
}

EndNetworkRegistry::EndNetworkRegistry(const net::Topology& topology,
                                       double deploy_prob,
                                       int large_network_hosts,
                                       util::Rng& rng)
    : topology_(&topology) {
  // Count hosts per end-network to bias deployment toward large sites.
  std::unordered_map<int, int> host_count;
  for (const net::Host& h : topology.hosts()) {
    if (h.endnet_id >= 0) {
      ++host_count[h.endnet_id];
    }
  }
  for (const net::EndNetwork& net : topology.endnets()) {
    double p = deploy_prob;
    const auto it = host_count.find(net.id);
    if (it != host_count.end() && it->second >= large_network_hosts) {
      p = std::min(1.0, 2.0 * p);
    }
    if (rng.Bernoulli(p)) {
      deployed_.insert(net.id);
    }
  }
}

bool EndNetworkRegistry::HasRegistry(int endnet_id) const {
  return deployed_.count(endnet_id) > 0;
}

bool EndNetworkRegistry::RegisterPeer(NodeId peer) {
  const net::Host& h = topology_->host(peer);
  if (h.endnet_id < 0 || !HasRegistry(h.endnet_id) ||
      slot_.count(peer) > 0) {
    return false;
  }
  auto& list = members_[h.endnet_id];
  slot_[peer] = list.size();
  list.push_back(peer);
  return true;
}

bool EndNetworkRegistry::UnregisterPeer(NodeId peer) {
  const net::Host& h = topology_->host(peer);
  if (h.endnet_id < 0 || !HasRegistry(h.endnet_id)) {
    return false;
  }
  return RemoveFromEndnetList(members_, slot_, h.endnet_id, peer);
}

std::vector<NodeId> EndNetworkRegistry::Query(NodeId joiner) const {
  const net::Host& h = topology_->host(joiner);
  if (h.endnet_id < 0 || !HasRegistry(h.endnet_id)) {
    return {};
  }
  const auto it = members_.find(h.endnet_id);
  if (it == members_.end()) {
    return {};
  }
  std::vector<NodeId> out;
  for (NodeId peer : it->second) {
    if (peer != joiner) {
      out.push_back(peer);
    }
  }
  return out;
}

}  // namespace np::mech
