// Composite proximity addresses (paper §5): "the UCL (or the IP
// prefix) is added as an extension of the otherwise latency-based
// proximity address. When comparing two such composite addresses, if
// the UCL indicates that the nodes share an upstream router, then the
// nodes are considered to be close together and the proximity address
// may be ignored. If the two nodes do not share an upstream router,
// then the UCL is ignored."
//
// This fixes the coordinate systems' §2.2 blind spot: coordinates
// cannot resolve LAN-scale distances inside a cluster, but a shared
// upstream router (with embedded leg latencies) can.
#pragma once

#include "coord/vivaldi.h"
#include "mech/ucl.h"
#include "net/topology.h"

namespace np::mech {

class CompositeProximity {
 public:
  /// The embedding provides the latency-based part of the address; it
  /// must cover every peer passed to RegisterPeer / EstimateLatency
  /// and outlive this object.
  CompositeProximity(const net::Topology& topology,
                     const coord::VivaldiEmbedding& embedding,
                     const UclOptions& options);

  /// Computes and stores the peer's UCL extension.
  void RegisterPeer(NodeId peer);

  bool IsRegistered(NodeId peer) const;

  /// Estimated RTT between two registered peers: through the deepest
  /// shared UCL router when one exists (sum of embedded legs),
  /// otherwise the coordinate distance.
  LatencyMs EstimateLatency(NodeId a, NodeId b) const;

  /// True when the UCL extension resolved the estimate (shared
  /// router), false when it fell back to coordinates.
  bool SharesUpstreamRouter(NodeId a, NodeId b) const;

 private:
  const net::Topology* topology_;
  const coord::VivaldiEmbedding* embedding_;
  UclOptions options_;
  std::unordered_map<NodeId, std::vector<UclEntry>> ucls_;
};

}  // namespace np::mech
