#include "mech/composite.h"

#include <algorithm>

#include "util/error.h"

namespace np::mech {

CompositeProximity::CompositeProximity(
    const net::Topology& topology, const coord::VivaldiEmbedding& embedding,
    const UclOptions& options)
    : topology_(&topology), embedding_(&embedding), options_(options) {}

void CompositeProximity::RegisterPeer(NodeId peer) {
  ucls_[peer] = BuildUcl(*topology_, peer, options_);
}

bool CompositeProximity::IsRegistered(NodeId peer) const {
  return ucls_.count(peer) > 0;
}

LatencyMs CompositeProximity::EstimateLatency(NodeId a, NodeId b) const {
  const auto ia = ucls_.find(a);
  const auto ib = ucls_.find(b);
  NP_ENSURE(ia != ucls_.end() && ib != ucls_.end(),
            "both peers must be registered");
  // Shared-router estimate: the minimum over shared routers of the sum
  // of the two legs (the deepest shared router gives the smallest sum
  // in tree routing, but scanning all pairs is cheap at <= 5 each).
  LatencyMs best = kInfiniteLatency;
  for (const UclEntry& ea : ia->second) {
    for (const UclEntry& eb : ib->second) {
      if (ea.router == eb.router) {
        best = std::min(best, ea.latency_ms + eb.latency_ms);
      }
    }
  }
  if (best != kInfiniteLatency) {
    return best;
  }
  return embedding_->PredictedLatency(a, b);
}

bool CompositeProximity::SharesUpstreamRouter(NodeId a, NodeId b) const {
  const auto ia = ucls_.find(a);
  const auto ib = ucls_.find(b);
  NP_ENSURE(ia != ucls_.end() && ib != ucls_.end(),
            "both peers must be registered");
  for (const UclEntry& ea : ia->second) {
    for (const UclEntry& eb : ib->second) {
      if (ea.router == eb.router) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace np::mech
