#include "mech/ucl.h"

#include <algorithm>
#include <unordered_map>

#include "util/contract.h"
#include "util/error.h"

namespace np::mech {

std::vector<UclEntry> BuildUcl(const net::Topology& topology, NodeId host,
                               const UclOptions& options) {
  NP_ENSURE(options.max_routers >= 1, "UCL needs at least one router");
  std::vector<UclEntry> ucl;
  for (RouterId router : topology.UpChain(host)) {
    if (static_cast<int>(ucl.size()) >= options.max_routers) {
      break;
    }
    // Traceroute-invisible routers cannot enter a UCL.
    if (!topology.router(router).responds) {
      continue;
    }
    ucl.push_back(UclEntry{router, topology.LatencyToRouter(host, router)});
  }
  return ucl;
}

UclDirectory::UclDirectory(KeyValueMap& map, const UclOptions& options)
    : map_(&map), options_(options) {
  NP_ENSURE(options_.max_routers >= 1, "UCL needs at least one router");
}

void UclDirectory::RegisterPeer(const net::Topology& topology, NodeId peer,
                                util::Rng& rng) {
  if (!registered_.insert(peer).second) {
    return;  // already published; a second copy would duplicate entries
  }
  for (const UclEntry& entry : BuildUcl(topology, peer, options_)) {
    map_->Put(static_cast<std::uint64_t>(entry.router),
              EncodePeerLatency(peer, entry.latency_ms), rng);
  }
}

void UclDirectory::UnregisterPeer(const net::Topology& topology, NodeId peer,
                                  util::Rng& rng) {
  if (registered_.erase(peer) == 0) {
    return;  // repeated/spurious departure notice
  }
  for (const UclEntry& entry : BuildUcl(topology, peer, options_)) {
    map_->Remove(static_cast<std::uint64_t>(entry.router),
                 EncodePeerLatency(peer, entry.latency_ms), rng);
  }
}

std::vector<UclDirectory::Candidate> UclDirectory::Candidates(
    const net::Topology& topology, NodeId joiner, util::Rng& rng,
    LatencyMs max_estimate_ms) const {
  std::unordered_map<NodeId, Candidate> best;
  for (const UclEntry& entry : BuildUcl(topology, joiner, options_)) {
    for (std::uint64_t value :
         map_->Get(static_cast<std::uint64_t>(entry.router), rng)) {
      const NodeId peer = DecodePeer(value);
      if (peer == joiner) {
        continue;
      }
      const LatencyMs estimate = entry.latency_ms + DecodeLatency(value);
      const auto it = best.find(peer);
      if (it == best.end() || estimate < it->second.estimated_ms) {
        best[peer] = Candidate{peer, estimate, entry.router};
      }
    }
  }
  std::vector<Candidate> out;
  out.reserve(best.size());
  NP_ORDER_INSENSITIVE("filtered into `out`, sorted with a total tie-break");
  for (const auto& [peer, candidate] : best) {
    if (candidate.estimated_ms <= max_estimate_ms) {
      out.push_back(candidate);
    }
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.estimated_ms != b.estimated_ms) {
      return a.estimated_ms < b.estimated_ms;
    }
    return a.peer < b.peer;
  });
  return out;
}

}  // namespace np::mech
