#include "mech/prefix_dir.h"

#include <algorithm>

#include "net/ip.h"
#include "util/error.h"

namespace np::mech {

PrefixDirectory::PrefixDirectory(KeyValueMap& map, int prefix_bits)
    : map_(&map), prefix_bits_(prefix_bits) {
  NP_ENSURE(prefix_bits >= 1 && prefix_bits <= 32,
            "prefix length must be in [1, 32]");
}

void PrefixDirectory::RegisterPeer(const net::Topology& topology, NodeId peer,
                                   util::Rng& rng) {
  if (!registered_.insert(peer).second) {
    return;  // already published; a second copy would duplicate entries
  }
  const std::uint64_t key =
      net::PrefixOf(topology.host(peer).ip, prefix_bits_);
  map_->Put(key, static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer)),
            rng);
}

void PrefixDirectory::UnregisterPeer(const net::Topology& topology,
                                     NodeId peer, util::Rng& rng) {
  if (registered_.erase(peer) == 0) {
    return;  // repeated/spurious departure notice
  }
  const std::uint64_t key =
      net::PrefixOf(topology.host(peer).ip, prefix_bits_);
  map_->Remove(
      key, static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer)),
      rng);
}

std::vector<NodeId> PrefixDirectory::Candidates(const net::Topology& topology,
                                                NodeId joiner,
                                                util::Rng& rng) const {
  const std::uint64_t key =
      net::PrefixOf(topology.host(joiner).ip, prefix_bits_);
  std::vector<NodeId> out;
  for (std::uint64_t value : map_->Get(key, rng)) {
    const NodeId peer = static_cast<NodeId>(value & 0xffffffffu);
    if (peer != joiner) {
      out.push_back(peer);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace np::mech
