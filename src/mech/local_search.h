// §5's first two approaches:
//
//  * Expanding multicast search inside the end-network — works only
//    where site multicast is enabled and only finds peers in the
//    joiner's own end-network (home users have no end-network at all).
//
//  * A membership-tracking registry server per end-network — needs a
//    deployed server, which only large networks justify; we model
//    deployment as a per-network Bernoulli weighted by network size.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/topology.h"
#include "util/rng.h"

namespace np::mech {

class MulticastBootstrap {
 public:
  explicit MulticastBootstrap(const net::Topology& topology)
      : topology_(&topology) {}

  /// A peer starts answering expanding-ring searches in its network.
  /// No-op for home users (nothing to multicast into) — returns false.
  bool RegisterPeer(NodeId peer);

  /// The peer stops answering (incremental churn). O(1): the peer's
  /// slot in its end-network list is tracked and swap-popped. Returns
  /// false when the peer was never registered.
  bool UnregisterPeer(NodeId peer);

  /// All registered peers reachable by an expanding multicast search
  /// from the joiner: members of the joiner's end-network, if that
  /// network has multicast enabled. Empty otherwise.
  std::vector<NodeId> Search(NodeId joiner) const;

  int registered_peers() const { return registered_; }

 private:
  const net::Topology* topology_;
  std::unordered_map<int, std::vector<NodeId>> by_endnet_;
  /// peer -> its slot in by_endnet_[its endnet], for O(1) removal.
  std::unordered_map<NodeId, std::size_t> slot_;
  int registered_ = 0;
};

class EndNetworkRegistry {
 public:
  /// Decides which end-networks run a registry server: probability
  /// deploy_prob, doubled (capped at 1) for networks that already host
  /// `large_network_hosts`+ hosts — "it needs a sufficiently large
  /// number of peers within each end-network to justify the setup".
  EndNetworkRegistry(const net::Topology& topology, double deploy_prob,
                     int large_network_hosts, util::Rng& rng);

  bool HasRegistry(int endnet_id) const;

  /// Registers the peer with its network's server; false if the peer
  /// has no end-network or the network runs no registry.
  bool RegisterPeer(NodeId peer);

  /// Deregisters the peer from its network's server (incremental
  /// churn). O(1) via the tracked slot; false when it was never
  /// registered.
  bool UnregisterPeer(NodeId peer);

  /// Peers registered in the joiner's end-network (empty without a
  /// registry).
  std::vector<NodeId> Query(NodeId joiner) const;

  int deployed_count() const {
    return static_cast<int>(deployed_.size());
  }

 private:
  const net::Topology* topology_;
  std::unordered_set<int> deployed_;
  std::unordered_map<int, std::vector<NodeId>> members_;
  /// peer -> its slot in members_[its endnet], for O(1) removal.
  std::unordered_map<NodeId, std::size_t> slot_;
};

}  // namespace np::mech
