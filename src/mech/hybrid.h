// Composition of a §5 mechanism with a classic nearest-peer algorithm:
// "the three approaches listed above would be used in conjunction with
// existing near-peer finding algorithms (and with one another) to
// obtain maximum accuracy". The mechanism proposes topology-informed
// candidates which the joiner probes; if none is an extreme-nearby
// peer, the query falls back to the inner algorithm (e.g. Meridian)
// and the better of the two answers wins.
#pragma once

#include <atomic>
#include <memory>
#include <optional>

#include "core/member_index.h"
#include "core/nearest_algorithm.h"
#include "mech/key_value_map.h"
#include "mech/local_search.h"
#include "mech/prefix_dir.h"
#include "mech/topology_space.h"
#include "mech/ucl.h"

namespace np::mech {

enum class Mechanism {
  kUcl,
  kPrefix,
  kMulticast,
  kRegistry,
};

const char* MechanismName(Mechanism mechanism);

struct HybridConfig {
  Mechanism mechanism = Mechanism::kUcl;
  /// Stop (skip the fallback) once a candidate at most this far is
  /// found — "the closest peer is in the same end-network" territory.
  LatencyMs accept_threshold_ms = 1.0;
  /// Probe at most this many mechanism candidates per query.
  int max_probe_candidates = 64;
  /// UCL-only: discard candidates whose embedded-latency estimate
  /// exceeds this (the paper's false-positive filter).
  LatencyMs ucl_max_estimate_ms = 20.0;
  UclOptions ucl;
  /// Prefix-only: the fixed prefix length.
  int prefix_bits = 24;
  /// Registry-only: deployment model.
  double registry_deploy_prob = 0.5;
  int registry_large_network_hosts = 8;
  /// Back the directories with Chord instead of the perfect map.
  bool use_chord_map = false;
};

class HybridNearest final : public core::NearestPeerAlgorithm {
 public:
  /// `fallback` may be null: mechanism-only operation (used to measure
  /// a mechanism's own hit rate).
  HybridNearest(const net::Topology& topology, const HybridConfig& config,
                std::unique_ptr<core::NearestPeerAlgorithm> fallback);

  /// Deep copy for snapshot clones: the map is cloned, the directories
  /// are copy-rebound onto the clone's map, and the fallback is cloned
  /// through its own Clone() (so the fallback must support snapshots
  /// for the copy to succeed).
  HybridNearest(const HybridNearest& other);

  std::string name() const override;

  void Build(const core::LatencySpace& space, std::vector<NodeId> members,
             util::Rng& rng) override;

  /// Incremental membership (the last rebuild-billed family): a joiner
  /// registers with the active mechanism directory — a UCL/prefix
  /// publish into the key-value map, or an end-network listing — and a
  /// leaver withdraws its entries, O(its own mappings) instead of a
  /// from-scratch re-registration of the whole overlay per epoch. The
  /// inner algorithm's own churn handling rides along; hybrids over a
  /// churn-free fallback still rebuild.
  bool SupportsChurn() const override {
    return fallback_ == nullptr || fallback_->SupportsChurn();
  }
  void AddMember(NodeId node, util::Rng& rng) override;
  void RemoveMember(NodeId node) override;

  core::QueryResult FindNearest(NodeId target,
                                const core::MeteredSpace& metered,
                                util::Rng& rng) override;

  /// The fallback algorithm probes under the same retry contract as
  /// the hybrid's own candidate loop.
  void AttachProbePolicy(const core::ProbePolicy* policy) override;

  /// The query path only reads overlay state; the mechanism-hit and
  /// map-hop tallies it bumps are relaxed atomics, so concurrent
  /// queries are safe whenever the fallback's are.
  bool ParallelQuerySafe() const override {
    return fallback_ == nullptr || fallback_->ParallelQuerySafe();
  }

  /// Snapshot clones are supported when the fallback (if any) supports
  /// them; the mechanism side always deep-copies.
  bool SupportsSnapshot() const override {
    return fallback_ == nullptr || fallback_->SupportsSnapshot();
  }
  std::unique_ptr<core::NearestPeerAlgorithm> Clone() const override;

  const std::vector<NodeId>& members() const override {
    return members_.members();
  }

  /// Fraction of queries answered by the mechanism alone (no fallback).
  double mechanism_hit_rate() const;

  /// Map hop accounting (Chord backend).
  const KeyValueMap& map() const { return *map_; }

 private:
  const net::Topology* topology_;
  HybridConfig config_;
  std::unique_ptr<core::NearestPeerAlgorithm> fallback_;
  std::unique_ptr<KeyValueMap> map_;
  std::unique_ptr<UclDirectory> ucl_;
  std::unique_ptr<PrefixDirectory> prefix_;
  std::unique_ptr<MulticastBootstrap> multicast_;
  std::unique_ptr<EndNetworkRegistry> registry_;
  core::MemberIndex members_;
  /// Stream for churn-time directory operations (Chord routing draws
  /// start nodes); forked from the Build rng so runs stay a pure
  /// function of the seed. RemoveMember has no rng parameter by
  /// design — leaves consume from here.
  util::Rng churn_rng_{0};
  /// Bumped inside the (otherwise read-only) query path; relaxed
  /// atomics so concurrent queries can share the overlay.
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> mechanism_hits_{0};
};

}  // namespace np::mech
