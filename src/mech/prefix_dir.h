// The IP-prefix mechanism (§5): "the key used to store the mapping is
// a fixed-length prefix (e.g., the /24 prefix) of the peer's IP
// address". Joining peers retrieve everyone sharing their prefix and
// probe them. Unlike the UCL variant there is no embedded latency, so
// false positives must be probed away (Fig 11's trade-off).
#pragma once

#include <unordered_set>
#include <vector>

#include "mech/key_value_map.h"
#include "net/topology.h"

namespace np::mech {

class PrefixDirectory {
 public:
  /// The map is borrowed and must outlive the directory.
  PrefixDirectory(KeyValueMap& map, int prefix_bits);

  /// Copy-rebind: duplicates `other`'s registration state on top of a
  /// different (typically freshly cloned) map. Used by snapshot clones,
  /// where the clone owns its own map copy.
  PrefixDirectory(const PrefixDirectory& other, KeyValueMap& map)
      : map_(&map),
        prefix_bits_(other.prefix_bits_),
        registered_(other.registered_) {}

  int prefix_bits() const { return prefix_bits_; }

  /// Idempotent: a repeated registration is a no-op (re-publishing
  /// would duplicate map entries).
  void RegisterPeer(const net::Topology& topology, NodeId peer,
                    util::Rng& rng);

  /// Withdraws the peer's prefix mapping (incremental churn; the key
  /// is a pure function of the peer's IP, so only the registered set
  /// is stored). Tolerates repeated or spurious departure notices.
  void UnregisterPeer(const net::Topology& topology, NodeId peer,
                      util::Rng& rng);

  /// Peers sharing the joiner's /prefix_bits, ascending by id.
  std::vector<NodeId> Candidates(const net::Topology& topology,
                                 NodeId joiner, util::Rng& rng) const;

  int registered_peers() const {
    return static_cast<int>(registered_.size());
  }

 private:
  KeyValueMap* map_;
  int prefix_bits_;
  std::unordered_set<NodeId> registered_;
};

}  // namespace np::mech
