// The IP-prefix mechanism (§5): "the key used to store the mapping is
// a fixed-length prefix (e.g., the /24 prefix) of the peer's IP
// address". Joining peers retrieve everyone sharing their prefix and
// probe them. Unlike the UCL variant there is no embedded latency, so
// false positives must be probed away (Fig 11's trade-off).
#pragma once

#include <vector>

#include "mech/key_value_map.h"
#include "net/topology.h"

namespace np::mech {

class PrefixDirectory {
 public:
  /// The map is borrowed and must outlive the directory.
  PrefixDirectory(KeyValueMap& map, int prefix_bits);

  int prefix_bits() const { return prefix_bits_; }

  void RegisterPeer(const net::Topology& topology, NodeId peer,
                    util::Rng& rng);

  /// Peers sharing the joiner's /prefix_bits, ascending by id.
  std::vector<NodeId> Candidates(const net::Topology& topology,
                                 NodeId joiner, util::Rng& rng) const;

  int registered_peers() const { return registered_; }

 private:
  KeyValueMap* map_;
  int prefix_bits_;
  int registered_ = 0;
};

}  // namespace np::mech
