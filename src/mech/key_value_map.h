// The key-value mapping infrastructure §5's decentralized hints rely
// on. Two backends: a perfect in-memory map (the paper's evaluation
// "assume[s] a perfect key-value map here for both approaches") and a
// Chord-backed map that accounts DHT routing hops (Ablation E).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dht/chord.h"
#include "util/rng.h"
#include "util/types.h"

namespace np::mech {

/// Packs a (peer, latency) pair into a 64-bit map value: latency in
/// 10 us units (saturating) in the high 32 bits, peer id in the low 32.
std::uint64_t EncodePeerLatency(NodeId peer, LatencyMs latency_ms);
NodeId DecodePeer(std::uint64_t value);
LatencyMs DecodeLatency(std::uint64_t value);

class KeyValueMap {
 public:
  virtual ~KeyValueMap() = default;

  virtual std::string name() const = 0;

  /// Appends a value under the key (multimap semantics).
  virtual void Put(std::uint64_t key, std::uint64_t value,
                   util::Rng& rng) = 0;

  /// All values stored under the key.
  virtual std::vector<std::uint64_t> Get(std::uint64_t key,
                                         util::Rng& rng) const = 0;

  /// Erases one stored copy of `value` under `key` (no-op when absent
  /// — departure notices may race or repeat in a real deployment).
  /// This is what lets the §5 directories unregister a leaving peer
  /// instead of being rebuilt from scratch every epoch.
  virtual void Remove(std::uint64_t key, std::uint64_t value,
                      util::Rng& rng) = 0;

  /// Cumulative routing hops spent on Put/Get (0 for the perfect map).
  virtual std::uint64_t total_hops() const = 0;
  virtual std::uint64_t operation_count() const = 0;

  /// Deep copy of the stored mappings and accounting (the serving
  /// engine clones a hybrid's directory map per snapshot).
  virtual std::unique_ptr<KeyValueMap> Clone() const = 0;
};

/// Idealized map: exactly what §5's preliminary evaluation assumes.
///
/// Operation accounting is a relaxed atomic so concurrent read-only
/// queries (Get) may share one map; Put/Remove still require exclusive
/// access (they mutate the store).
class PerfectMap final : public KeyValueMap {
 public:
  PerfectMap() = default;
  PerfectMap(const PerfectMap& other)
      : store_(other.store_),
        operations_(other.operations_.load(std::memory_order_relaxed)) {}

  std::string name() const override { return "perfect"; }
  void Put(std::uint64_t key, std::uint64_t value, util::Rng& rng) override;
  std::vector<std::uint64_t> Get(std::uint64_t key,
                                 util::Rng& rng) const override;
  void Remove(std::uint64_t key, std::uint64_t value,
              util::Rng& rng) override;
  std::uint64_t total_hops() const override { return 0; }
  std::uint64_t operation_count() const override {
    return operations_.load(std::memory_order_relaxed);
  }
  std::unique_ptr<KeyValueMap> Clone() const override {
    return std::make_unique<PerfectMap>(*this);
  }

 private:
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> store_;
  mutable std::atomic<std::uint64_t> operations_{0};
};

/// Chord-backed map: keys are hashed onto the ring (§5's prescription
/// for non-uniform keys such as IP prefixes), and every operation pays
/// O(log n) routing hops.
class ChordMap final : public KeyValueMap {
 public:
  /// The ring is hosted by the given peers.
  ChordMap(std::vector<NodeId> ring_members, std::uint64_t id_salt);

  ChordMap(const ChordMap& other)
      : ring_(other.ring_),
        hops_(other.hops_.load(std::memory_order_relaxed)),
        operations_(other.operations_.load(std::memory_order_relaxed)) {}

  std::string name() const override { return "chord"; }
  void Put(std::uint64_t key, std::uint64_t value, util::Rng& rng) override;
  std::vector<std::uint64_t> Get(std::uint64_t key,
                                 util::Rng& rng) const override;
  void Remove(std::uint64_t key, std::uint64_t value,
              util::Rng& rng) override;
  std::uint64_t total_hops() const override {
    return hops_.load(std::memory_order_relaxed);
  }
  std::uint64_t operation_count() const override {
    return operations_.load(std::memory_order_relaxed);
  }
  std::unique_ptr<KeyValueMap> Clone() const override {
    return std::make_unique<ChordMap>(*this);
  }

  const dht::ChordRing& ring() const { return ring_; }

 private:
  dht::ChordRing ring_;
  /// Hop/operation tallies mutate under const Get, so they are relaxed
  /// atomics: concurrent queries may share the map read-only.
  mutable std::atomic<std::uint64_t> hops_{0};
  mutable std::atomic<std::uint64_t> operations_{0};
};

}  // namespace np::mech
