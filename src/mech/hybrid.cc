#include "mech/hybrid.h"

#include <algorithm>

#include "util/error.h"

namespace np::mech {

const char* MechanismName(Mechanism mechanism) {
  switch (mechanism) {
    case Mechanism::kUcl:
      return "ucl";
    case Mechanism::kPrefix:
      return "prefix";
    case Mechanism::kMulticast:
      return "multicast";
    case Mechanism::kRegistry:
      return "registry";
  }
  return "unknown";
}

HybridNearest::HybridNearest(
    const net::Topology& topology, const HybridConfig& config,
    std::unique_ptr<core::NearestPeerAlgorithm> fallback)
    : topology_(&topology),
      config_(config),
      fallback_(std::move(fallback)) {
  NP_ENSURE(config_.accept_threshold_ms > 0.0,
            "accept threshold must be positive");
  NP_ENSURE(config_.max_probe_candidates >= 1,
            "must probe at least one candidate");
}

HybridNearest::HybridNearest(const HybridNearest& other)
    : topology_(other.topology_),
      config_(other.config_),
      members_(other.members_),
      churn_rng_(other.churn_rng_),
      queries_(other.queries_.load(std::memory_order_relaxed)),
      mechanism_hits_(
          other.mechanism_hits_.load(std::memory_order_relaxed)) {
  if (other.fallback_ != nullptr) {
    fallback_ = other.fallback_->Clone();
  }
  if (other.map_ != nullptr) {
    map_ = other.map_->Clone();
  }
  if (other.ucl_ != nullptr) {
    ucl_ = std::make_unique<UclDirectory>(*other.ucl_, *map_);
  }
  if (other.prefix_ != nullptr) {
    prefix_ = std::make_unique<PrefixDirectory>(*other.prefix_, *map_);
  }
  if (other.multicast_ != nullptr) {
    multicast_ = std::make_unique<MulticastBootstrap>(*other.multicast_);
  }
  if (other.registry_ != nullptr) {
    registry_ = std::make_unique<EndNetworkRegistry>(*other.registry_);
  }
}

std::unique_ptr<core::NearestPeerAlgorithm> HybridNearest::Clone() const {
  NP_ENSURE(SupportsSnapshot(),
            "hybrid fallback does not support snapshot clones");
  return core::DetachedClone(std::make_unique<HybridNearest>(*this));
}

std::string HybridNearest::name() const {
  std::string n = std::string("hybrid-") + MechanismName(config_.mechanism);
  if (fallback_ != nullptr) {
    n += "+" + fallback_->name();
  }
  return n;
}

void HybridNearest::Build(const core::LatencySpace& space,
                          std::vector<NodeId> members, util::Rng& rng) {
  NP_ENSURE(!members.empty(), "hybrid requires members");
  members_.Reset(std::move(members));
  queries_ = 0;
  mechanism_hits_ = 0;
  churn_rng_ = util::Rng(rng());

  if (config_.use_chord_map) {
    map_ = std::make_unique<ChordMap>(members_.members(),
                                      /*id_salt=*/0xC0FFEE);
  } else {
    map_ = std::make_unique<PerfectMap>();
  }

  ucl_.reset();
  prefix_.reset();
  multicast_.reset();
  registry_.reset();
  switch (config_.mechanism) {
    case Mechanism::kUcl:
      ucl_ = std::make_unique<UclDirectory>(*map_, config_.ucl);
      for (NodeId peer : members_.members()) {
        ucl_->RegisterPeer(*topology_, peer, rng);
      }
      break;
    case Mechanism::kPrefix:
      prefix_ = std::make_unique<PrefixDirectory>(*map_, config_.prefix_bits);
      for (NodeId peer : members_.members()) {
        prefix_->RegisterPeer(*topology_, peer, rng);
      }
      break;
    case Mechanism::kMulticast:
      multicast_ = std::make_unique<MulticastBootstrap>(*topology_);
      for (NodeId peer : members_.members()) {
        multicast_->RegisterPeer(peer);
      }
      break;
    case Mechanism::kRegistry:
      registry_ = std::make_unique<EndNetworkRegistry>(
          *topology_, config_.registry_deploy_prob,
          config_.registry_large_network_hosts, rng);
      for (NodeId peer : members_.members()) {
        registry_->RegisterPeer(peer);
      }
      break;
  }

  if (fallback_ != nullptr) {
    fallback_->Build(space, members_.members(), rng);
  }
}

void HybridNearest::AddMember(NodeId node, util::Rng& rng) {
  NP_ENSURE(map_ != nullptr, "Build must run before AddMember");
  members_.Add(node);  // throws on double-add
  switch (config_.mechanism) {
    case Mechanism::kUcl:
      ucl_->RegisterPeer(*topology_, node, rng);
      break;
    case Mechanism::kPrefix:
      prefix_->RegisterPeer(*topology_, node, rng);
      break;
    case Mechanism::kMulticast:
      multicast_->RegisterPeer(node);
      break;
    case Mechanism::kRegistry:
      registry_->RegisterPeer(node);
      break;
  }
  if (fallback_ != nullptr) {
    fallback_->AddMember(node, rng);
  }
  // Note: a Chord-backed map keeps its original ring (the ring hosts
  // the directory; its own membership protocol is out of scope here).
}

void HybridNearest::RemoveMember(NodeId node) {
  NP_ENSURE(map_ != nullptr, "Build must run before RemoveMember");
  NP_ENSURE(members_.size() > 1, "cannot remove the last member");
  members_.Remove(node);  // throws when not a member
  switch (config_.mechanism) {
    case Mechanism::kUcl:
      ucl_->UnregisterPeer(*topology_, node, churn_rng_);
      break;
    case Mechanism::kPrefix:
      prefix_->UnregisterPeer(*topology_, node, churn_rng_);
      break;
    case Mechanism::kMulticast:
      multicast_->UnregisterPeer(node);
      break;
    case Mechanism::kRegistry:
      registry_->UnregisterPeer(node);
      break;
  }
  if (fallback_ != nullptr) {
    fallback_->RemoveMember(node);
  }
}

core::QueryResult HybridNearest::FindNearest(NodeId target,
                                             const core::MeteredSpace& metered,
                                             util::Rng& rng) {
  queries_.fetch_add(1, std::memory_order_relaxed);

  // Collect mechanism candidates, cheapest-estimate first for UCL.
  std::vector<NodeId> candidates;
  switch (config_.mechanism) {
    case Mechanism::kUcl: {
      NP_ENSURE(ucl_ != nullptr, "Build must run before FindNearest");
      for (const auto& c : ucl_->Candidates(*topology_, target, rng,
                                            config_.ucl_max_estimate_ms)) {
        candidates.push_back(c.peer);
      }
      break;
    }
    case Mechanism::kPrefix:
      NP_ENSURE(prefix_ != nullptr, "Build must run before FindNearest");
      candidates = prefix_->Candidates(*topology_, target, rng);
      break;
    case Mechanism::kMulticast:
      NP_ENSURE(multicast_ != nullptr, "Build must run before FindNearest");
      candidates = multicast_->Search(target);
      break;
    case Mechanism::kRegistry:
      NP_ENSURE(registry_ != nullptr, "Build must run before FindNearest");
      candidates = registry_->Query(target);
      break;
  }
  if (static_cast<int>(candidates.size()) > config_.max_probe_candidates) {
    candidates.resize(static_cast<std::size_t>(config_.max_probe_candidates));
  }

  core::QueryResult result;
  const core::ProbePolicy& policy = probe_policy();
  for (NodeId candidate : candidates) {
    const auto measured = policy.Probe(metered, candidate, target);
    ++result.probes;
    if (!measured) {
      continue;  // unreachable candidate: route around it
    }
    const LatencyMs d = *measured;
    if (d < result.found_latency_ms ||
        (d == result.found_latency_ms && candidate < result.found)) {
      result.found_latency_ms = d;
      result.found = candidate;
    }
  }

  if (result.found != kInvalidNode &&
      result.found_latency_ms <= config_.accept_threshold_ms) {
    mechanism_hits_.fetch_add(1, std::memory_order_relaxed);
    return result;
  }

  if (fallback_ == nullptr) {
    if (result.found == kInvalidNode) {
      // Mechanism produced nothing: return a random member so the
      // query still has an answer (probing it once; under faults the
      // draw retries a few times before the query gives up).
      for (int draw = 0; draw <= core::kStartRedraws; ++draw) {
        const NodeId pick = members_.at(rng.Index(members_.size()));
        const auto measured = policy.Probe(metered, pick, target);
        ++result.probes;
        if (measured) {
          result.found = pick;
          result.found_latency_ms = *measured;
          break;
        }
      }
    }
    return result;
  }

  core::QueryResult fb = fallback_->FindNearest(target, metered, rng);
  fb.probes += result.probes;
  if (result.found != kInvalidNode &&
      result.found_latency_ms < fb.found_latency_ms) {
    fb.found = result.found;
    fb.found_latency_ms = result.found_latency_ms;
  }
  return fb;
}

void HybridNearest::AttachProbePolicy(const core::ProbePolicy* policy) {
  core::NearestPeerAlgorithm::AttachProbePolicy(policy);
  if (fallback_ != nullptr) {
    fallback_->AttachProbePolicy(policy);
  }
}

double HybridNearest::mechanism_hit_rate() const {
  const std::uint64_t queries = queries_.load(std::memory_order_relaxed);
  const std::uint64_t hits =
      mechanism_hits_.load(std::memory_order_relaxed);
  return queries == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(queries);
}

}  // namespace np::mech
