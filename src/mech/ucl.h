// The UCL (Upstream Connectivity List) mechanism (§5, third approach):
// each peer learns the routers within a few hops upstream by running
// traceroutes, publishes (router -> peer, latency-to-router) mappings
// into the key-value map, and a newly joining peer retrieves the peers
// it shares upstream routers with. Embedded latencies let it discard
// candidates whose estimated distance (sum of the two router legs) is
// too large without probing — the false-positive immunity the paper
// highlights over the IP-prefix variant.
#pragma once

#include <unordered_set>
#include <vector>

#include "mech/key_value_map.h"
#include "net/topology.h"

namespace np::mech {

struct UclOptions {
  /// Upstream routers tracked per peer ("a fixed number of hops, say
  /// 5, or closer from the peer").
  int max_routers = 5;
};

struct UclEntry {
  RouterId router = kInvalidRouter;
  /// RTT from the peer to this router, ms.
  LatencyMs latency_ms = 0.0;
};

/// The peer's UCL: its up-chain routers that answer traceroute probes
/// (a peer can only learn routers that respond), nearest first, capped
/// at max_routers.
std::vector<UclEntry> BuildUcl(const net::Topology& topology, NodeId host,
                               const UclOptions& options);

class UclDirectory {
 public:
  /// The map is borrowed and must outlive the directory.
  UclDirectory(KeyValueMap& map, const UclOptions& options);

  /// Copy-rebind: duplicates `other`'s registration state on top of a
  /// different (typically freshly cloned) map. Used by snapshot clones,
  /// where the clone owns its own map copy.
  UclDirectory(const UclDirectory& other, KeyValueMap& map)
      : map_(&map),
        options_(other.options_),
        registered_(other.registered_) {}

  /// Publishes the peer's UCL mappings. Idempotent: a repeated
  /// registration is a no-op (re-publishing would duplicate map
  /// entries).
  void RegisterPeer(const net::Topology& topology, NodeId peer,
                    util::Rng& rng);

  /// Withdraws the peer's UCL mappings (incremental churn: the
  /// leaver's entries are deleted key by key instead of the directory
  /// being rebuilt). The UCL is a pure function of the topology, so
  /// the published keys are recomputed rather than stored. Tolerates
  /// repeated or spurious departure notices (no-op for unregistered
  /// peers).
  void UnregisterPeer(const net::Topology& topology, NodeId peer,
                      util::Rng& rng);

  struct Candidate {
    NodeId peer = kInvalidNode;
    /// Estimated RTT: joiner leg + candidate leg through the shared
    /// router (an upper bound on the true RTT in tree routing).
    LatencyMs estimated_ms = 0.0;
    RouterId shared_router = kInvalidRouter;
  };

  /// Peers sharing at least one UCL router with the joiner, deduped to
  /// their best estimate, sorted ascending by estimate, and filtered
  /// to estimates <= max_estimate_ms (pass kInfiniteLatency to keep
  /// all).
  std::vector<Candidate> Candidates(const net::Topology& topology,
                                    NodeId joiner, util::Rng& rng,
                                    LatencyMs max_estimate_ms) const;

  int registered_peers() const {
    return static_cast<int>(registered_.size());
  }

 private:
  KeyValueMap* map_;
  UclOptions options_;
  std::unordered_set<NodeId> registered_;
};

}  // namespace np::mech
