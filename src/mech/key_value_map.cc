#include "mech/key_value_map.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace np::mech {

namespace {
constexpr double kLatencyUnitMs = 0.01;  // 10 us
}  // namespace

std::uint64_t EncodePeerLatency(NodeId peer, LatencyMs latency_ms) {
  NP_ENSURE(peer >= 0, "peer id must be non-negative");
  NP_ENSURE(latency_ms >= 0.0, "latency must be non-negative");
  const double units = std::round(latency_ms / kLatencyUnitMs);
  const std::uint64_t quantized = static_cast<std::uint64_t>(
      std::min(units, 4294967295.0));
  return (quantized << 32) | static_cast<std::uint32_t>(peer);
}

NodeId DecodePeer(std::uint64_t value) {
  return static_cast<NodeId>(value & 0xffffffffu);
}

LatencyMs DecodeLatency(std::uint64_t value) {
  return static_cast<double>(value >> 32) * kLatencyUnitMs;
}

void PerfectMap::Put(std::uint64_t key, std::uint64_t value,
                     util::Rng& rng) {
  (void)rng;
  store_[key].push_back(value);
  operations_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> PerfectMap::Get(std::uint64_t key,
                                           util::Rng& rng) const {
  (void)rng;
  operations_.fetch_add(1, std::memory_order_relaxed);
  const auto it = store_.find(key);
  if (it == store_.end()) {
    return {};
  }
  return it->second;
}

void PerfectMap::Remove(std::uint64_t key, std::uint64_t value,
                        util::Rng& rng) {
  (void)rng;
  operations_.fetch_add(1, std::memory_order_relaxed);
  const auto it = store_.find(key);
  if (it == store_.end()) {
    return;
  }
  auto& values = it->second;
  const auto vit = std::find(values.begin(), values.end(), value);
  if (vit == values.end()) {
    return;
  }
  values.erase(vit);
  if (values.empty()) {
    store_.erase(it);
  }
}

ChordMap::ChordMap(std::vector<NodeId> ring_members, std::uint64_t id_salt)
    : ring_(std::move(ring_members), dht::ChordConfig{id_salt}) {}

void ChordMap::Put(std::uint64_t key, std::uint64_t value, util::Rng& rng) {
  const auto route = ring_.Put(dht::HashToRing(key), value, rng);
  hops_.fetch_add(static_cast<std::uint64_t>(route.hops),
                  std::memory_order_relaxed);
  operations_.fetch_add(1, std::memory_order_relaxed);
}

void ChordMap::Remove(std::uint64_t key, std::uint64_t value,
                      util::Rng& rng) {
  const auto route = ring_.Remove(dht::HashToRing(key), value, rng);
  hops_.fetch_add(static_cast<std::uint64_t>(route.hops),
                  std::memory_order_relaxed);
  operations_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> ChordMap::Get(std::uint64_t key,
                                         util::Rng& rng) const {
  dht::ChordRing::LookupResult route;
  const auto values = ring_.Get(dht::HashToRing(key), rng, &route);
  hops_.fetch_add(static_cast<std::uint64_t>(route.hops),
                  std::memory_order_relaxed);
  operations_.fetch_add(1, std::memory_order_relaxed);
  return values;
}

}  // namespace np::mech
