// Meridian closest-node discovery (Wong, Slivkins, Sirer, SIGCOMM'05),
// reimplemented as the paper's §4 simulation subject.
//
// Each overlay node keeps concentric latency rings with exponentially
// growing radii; each ring holds at most `ring_size` members chosen for
// geographic diversity (the original maximizes the hypervolume of the
// member polytope; we provide greedy max-min distance — a standard
// k-center approximation — plus sum-distance and random policies for
// ablation). A closest-node query at a node with latency d to the
// target probes ring members whose latency to the node lies within
// [(1-beta)d, (1+beta)d]; it forwards to the best candidate only if
// that candidate improved the distance by at least the beta gate
// (d_next < beta * d), otherwise the query stops.
//
// The paper runs this with beta = 0.5 and 16 nodes per ring.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/member_index.h"
#include "core/nearest_algorithm.h"
#include "util/rng.h"
#include "util/types.h"

namespace np::meridian {

/// How a full ring chooses which members to keep.
enum class RingSelectionPolicy {
  kRandom,       // uniform subset
  kSumDistance,  // greedy, maximize sum of pairwise latencies
  kMaxMin,       // greedy k-center, maximize minimum pairwise latency
};

/// What the query returns when routing stops.
enum class ReturnPolicy {
  /// The lowest-latency node probed anywhere during the query
  /// (Meridian tracks probe results, so this is what a deployment
  /// would report).
  kBestProbed,
  /// The node the query stopped at — a stricter reading of "the query
  /// terminates when the current node can find no closer node"; used
  /// as an ablation.
  kCurrentNode,
};

struct MeridianConfig {
  /// Innermost ring radius, ms: ring 0 holds members closer than alpha.
  double alpha_ms = 1.0;
  /// Ring radius growth factor: ring i (i >= 1) spans
  /// [alpha * s^(i-1), alpha * s^i).
  double s = 2.0;
  /// Number of rings; the outermost is open-ended.
  int num_rings = 16;
  /// Maximum members kept per ring (the paper uses 16).
  int ring_size = 16;
  /// Acceptance gate: forward only if the best candidate is closer to
  /// the target than beta * (current distance). The paper uses 0.5.
  double beta = 0.5;
  RingSelectionPolicy selection = RingSelectionPolicy::kMaxMin;
  ReturnPolicy return_policy = ReturnPolicy::kBestProbed;
  /// Safety cap on forwarding hops.
  int max_hops = 64;

  /// Build mode. Full knowledge = every node considers every member
  /// for its rings, i.e. a fully converged deployment (what the
  /// paper's simulator assumes). With gossip, each node starts from a
  /// few bootstrap contacts and learns candidates by exchanging ring
  /// contents for `gossip_rounds` rounds — the real protocol's
  /// discovery path.
  bool full_knowledge = true;
  int gossip_bootstrap_contacts = 8;
  int gossip_rounds = 24;
};

/// One ring entry: a member and the (build-time measured) latency from
/// the ring owner to it.
struct RingEntry {
  NodeId member = kInvalidNode;
  LatencyMs latency_ms = 0.0;
};

/// Per-hop trace record for diagnosis and tests.
struct HopRecord {
  NodeId node = kInvalidNode;
  LatencyMs distance_to_target_ms = 0.0;
  int candidates_probed = 0;
};

struct TracedResult {
  core::QueryResult result;
  std::vector<HopRecord> hops;
};

class MeridianOverlay final : public core::NearestPeerAlgorithm {
 public:
  explicit MeridianOverlay(MeridianConfig config);

  std::string name() const override { return "meridian"; }

  void Build(const core::LatencySpace& space, std::vector<NodeId> members,
             util::Rng& rng) override;

  /// Full-knowledge ring construction is independent per member, so
  /// batch construction fans out over ParallelFor with per-member RNG
  /// streams `Mix64(base ^ node)` — bit-identical to the serial Build
  /// for every thread count. The gossip build is round-sequential by
  /// nature and runs serially regardless of the thread budget (still
  /// deterministic).
  bool SupportsParallelBuild() const override { return true; }
  void ParallelBuild(const core::LatencySpace& space,
                     std::vector<NodeId> members, util::Rng& rng,
                     int num_threads) override;

  /// Incremental membership: a joiner bootstraps its rings from a few
  /// random contacts (and their ring members), and existing members
  /// consider the joiner for their own rings; a leaver is purged from
  /// the rings that hold it, located through per-member occurrence
  /// lists rather than an overlay scan — O(rings holding the leaver)
  /// per leave, O(1) amortized in the overlay size.
  bool SupportsChurn() const override { return true; }
  void AddMember(NodeId node, util::Rng& rng) override;
  void RemoveMember(NodeId node) override;

  /// Query path audited read-only over overlay state: safe for the
  /// runner's concurrent per-query threads.
  bool ParallelQuerySafe() const override { return true; }

  core::QueryResult FindNearest(NodeId target,
                                const core::MeteredSpace& metered,
                                util::Rng& rng) override;

  /// FindNearest plus the per-hop trace.
  TracedResult FindNearestTraced(NodeId target,
                                 const core::MeteredSpace& metered,
                                 util::Rng& rng);

  const std::vector<NodeId>& members() const override {
    return members_.members();
  }

  /// All state is value-semantic (index, per-member rings) plus the
  /// borrowed immutable space.
  bool SupportsSnapshot() const override { return true; }
  std::unique_ptr<core::NearestPeerAlgorithm> Clone() const override {
    return core::DetachedClone(std::make_unique<MeridianOverlay>(*this));
  }

  const MeridianConfig& config() const { return config_; }

  /// Ring index that a member at the given latency falls into.
  int RingIndexFor(LatencyMs latency_ms) const;

  /// The rings of one member (indexed by its position in members()).
  const std::vector<std::vector<RingEntry>>& RingsOf(NodeId member) const;

  /// Length of one member's occurrence list (for tests asserting the
  /// compaction bound: length stays O(live entries)).
  std::size_t OccurrenceEntries(NodeId member) const;

 private:
  /// Reduces `candidates` to at most `ring_size` per the policy.
  std::vector<RingEntry> SelectRingMembers(std::vector<RingEntry> candidates,
                                           util::Rng& rng) const;

  /// Shared construction path (Build = serial reference, num_threads
  /// = 1).
  void BuildImpl(const core::LatencySpace& space, std::vector<NodeId> members,
                 util::Rng& rng, int num_threads);

  /// Converged build: every member considered for every ring.
  void BuildFullKnowledge(const core::LatencySpace& space, util::Rng& rng,
                          int num_threads);

  /// Gossip build: bootstrap contacts + ring-exchange rounds.
  void BuildByGossip(const core::LatencySpace& space, util::Rng& rng);

  /// Compacts one member's occurrence list when it has doubled since
  /// the last compaction (and exceeds kOccCompactMin): sorts, dedupes,
  /// and drops entries whose named ring no longer holds the member.
  /// Amortized O(1) per insertion; bounds the list length at 2 x live
  /// entries + O(1) under arbitrary churn.
  void MaybeCompactOcc(std::size_t position);

  static constexpr std::size_t kOccCompactMin = 64;

  /// Occurrence bookkeeping: packs (owner, ring) into one word (ring
  /// indices fit 8 bits; num_rings <= 255 enforced at construction).
  static std::uint64_t PackOccurrence(NodeId owner, std::size_t ring) {
    return (static_cast<std::uint64_t>(owner) << 8) |
           static_cast<std::uint64_t>(ring);
  }

  MeridianConfig config_;
  const core::LatencySpace* space_ = nullptr;
  core::MemberIndex members_;
  /// rings_[member_pos][ring] -> selected entries.
  std::vector<std::vector<std::vector<RingEntry>>> rings_;
  /// occ_[member_pos] -> packed (owner, ring) rings that may hold this
  /// member. Append-only per insertion; ring reselection drops entries
  /// without unrecording, so consumers re-check the named ring —
  /// RemoveMember's purge treats a no-op erase as stale. Replaces the
  /// old O(overlay * rings) purge scan.
  std::vector<std::vector<std::uint64_t>> occ_;
  /// occ_floor_[member_pos] -> occurrence-list length at the last
  /// compaction (floored at kOccCompactMin / 2); the next compaction
  /// triggers when the list doubles past it.
  std::vector<std::size_t> occ_floor_;
};

}  // namespace np::meridian
