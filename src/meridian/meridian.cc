#include "meridian/meridian.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>

#include "util/error.h"
#include "util/parallel.h"

namespace np::meridian {

MeridianOverlay::MeridianOverlay(MeridianConfig config)
    : config_(config) {
  NP_ENSURE(config_.alpha_ms > 0.0, "alpha must be positive");
  NP_ENSURE(config_.s > 1.0, "ring growth factor must exceed 1");
  NP_ENSURE(config_.num_rings >= 1 && config_.num_rings <= 255,
            "rings must be in [1, 255]");
  NP_ENSURE(config_.ring_size >= 1, "ring size must be positive");
  NP_ENSURE(config_.beta > 0.0 && config_.beta < 1.0,
            "beta must be in (0, 1)");
  NP_ENSURE(config_.max_hops >= 1, "max hops must be positive");
}

int MeridianOverlay::RingIndexFor(LatencyMs latency_ms) const {
  if (latency_ms < config_.alpha_ms) {
    return 0;
  }
  const int ring =
      1 + static_cast<int>(
              std::floor(std::log(latency_ms / config_.alpha_ms) /
                         std::log(config_.s)));
  return std::min(ring, config_.num_rings - 1);
}

std::vector<RingEntry> MeridianOverlay::SelectRingMembers(
    std::vector<RingEntry> candidates, util::Rng& rng) const {
  const auto k = static_cast<std::size_t>(config_.ring_size);
  if (candidates.size() <= k) {
    return candidates;
  }
  switch (config_.selection) {
    case RingSelectionPolicy::kRandom: {
      rng.Shuffle(candidates);
      candidates.resize(k);
      return candidates;
    }
    case RingSelectionPolicy::kSumDistance:
    case RingSelectionPolicy::kMaxMin: {
      // Greedy diversity selection: seed with a random candidate, then
      // repeatedly add the candidate that maximizes its distance score
      // to the already-selected set (min-distance for kMaxMin — the
      // k-center rule — or sum-distance). `score[i]` carries the
      // incremental state so each round is O(|candidates|).
      const bool use_min = config_.selection == RingSelectionPolicy::kMaxMin;
      std::vector<RingEntry> selected;
      selected.reserve(k);
      std::vector<bool> taken(candidates.size(), false);
      std::vector<double> score(
          candidates.size(),
          use_min ? std::numeric_limits<double>::infinity() : 0.0);
      std::size_t seed = rng.Index(candidates.size());
      while (selected.size() < k) {
        taken[seed] = true;
        selected.push_back(candidates[seed]);
        if (selected.size() == k) {
          break;
        }
        const NodeId just_added = candidates[seed].member;
        double best_score = -1.0;
        std::size_t best_index = candidates.size();
        for (std::size_t i = 0; i < candidates.size(); ++i) {
          if (taken[i]) {
            continue;
          }
          const double d =
              space_->Latency(candidates[i].member, just_added);
          score[i] = use_min ? std::min(score[i], d) : score[i] + d;
          if (score[i] > best_score) {
            best_score = score[i];
            best_index = i;
          }
        }
        NP_ENSURE(best_index < candidates.size(),
                  "ring selection ran out of candidates");
        seed = best_index;
      }
      return selected;
    }
  }
  NP_ENSURE(false, "unknown ring selection policy");
  return {};
}

void MeridianOverlay::Build(const core::LatencySpace& space,
                            std::vector<NodeId> members, util::Rng& rng) {
  BuildImpl(space, std::move(members), rng, 1);
}

void MeridianOverlay::ParallelBuild(const core::LatencySpace& space,
                                    std::vector<NodeId> members,
                                    util::Rng& rng, int num_threads) {
  BuildImpl(space, std::move(members), rng, num_threads);
}

void MeridianOverlay::BuildImpl(const core::LatencySpace& space,
                                std::vector<NodeId> members, util::Rng& rng,
                                int num_threads) {
  NP_ENSURE(!members.empty(), "meridian requires at least one member");
  space_ = &space;
  members_.Reset(std::move(members));
  rings_.assign(members_.size(), {});
  if (config_.full_knowledge) {
    BuildFullKnowledge(space, rng, num_threads);
  } else {
    // Gossip rounds exchange state between members and are inherently
    // order-dependent; they run serially for any thread budget.
    BuildByGossip(space, rng);
  }

  // Occurrence pass (serial: a ring member's list is appended from
  // every owner, so fan-out here would race).
  occ_.assign(members_.size(), {});
  for (std::size_t i = 0; i < members_.size(); ++i) {
    for (std::size_t r = 0; r < rings_[i].size(); ++r) {
      for (const RingEntry& entry : rings_[i][r]) {
        occ_[members_.PositionOf(entry.member)].push_back(
            PackOccurrence(members_.at(i), r));
      }
    }
  }
}

void MeridianOverlay::BuildFullKnowledge(const core::LatencySpace& space,
                                         util::Rng& rng, int num_threads) {
  const std::vector<NodeId>& ids = members_.members();
  // One base draw, then a private stream per member keyed by its node
  // id: iteration i touches only rings_[i], so any thread count
  // produces the serial result bit for bit.
  const std::uint64_t base = rng();
  util::ParallelFor(0, ids.size(), num_threads, [&](std::size_t i) {
    const NodeId owner = ids[i];
    util::Rng mrng(util::Mix64(base ^ static_cast<std::uint64_t>(owner)));
    std::vector<std::vector<RingEntry>> buckets(
        static_cast<std::size_t>(config_.num_rings));
    // The owner rides second so row-caching backends reuse its row.
    for (const NodeId other : ids) {
      if (other == owner) {
        continue;
      }
      const LatencyMs d = space.Latency(other, owner);
      buckets[static_cast<std::size_t>(RingIndexFor(d))].push_back(
          RingEntry{other, d});
    }
    rings_[i].resize(buckets.size());
    for (std::size_t r = 0; r < buckets.size(); ++r) {
      rings_[i][r] = SelectRingMembers(std::move(buckets[r]), mrng);
    }
  });
}

void MeridianOverlay::BuildByGossip(const core::LatencySpace& space,
                                    util::Rng& rng) {
  NP_ENSURE(config_.gossip_bootstrap_contacts >= 1,
            "gossip needs at least one bootstrap contact");
  NP_ENSURE(config_.gossip_rounds >= 1, "gossip needs at least one round");
  const std::vector<NodeId>& ids = members_.members();
  const std::size_t n = ids.size();

  // Known-candidate sets per node (ring buckets, unbounded during
  // discovery; selection prunes at the end of every round).
  std::vector<std::vector<std::vector<RingEntry>>> buckets(
      n, std::vector<std::vector<RingEntry>>(
             static_cast<std::size_t>(config_.num_rings)));
  // Membership bitmaps to avoid duplicate learning.
  std::vector<std::vector<bool>> knows(n, std::vector<bool>(n, false));

  const auto learn = [&](std::size_t owner, std::size_t other) {
    if (owner == other || knows[owner][other]) {
      return;
    }
    knows[owner][other] = true;
    const LatencyMs d = space.Latency(ids[other], ids[owner]);
    buckets[owner][static_cast<std::size_t>(RingIndexFor(d))].push_back(
        RingEntry{ids[other], d});
  };

  // Bootstrap: a few random contacts each (the join server's seed
  // list), symmetric so the gossip graph starts connected.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = std::min<std::size_t>(
        static_cast<std::size_t>(config_.gossip_bootstrap_contacts), n - 1);
    for (std::size_t pick : rng.Sample(n - 1, k)) {
      const std::size_t j = pick >= i ? pick + 1 : pick;
      learn(i, j);
      learn(j, i);
    }
  }

  for (int round = 0; round < config_.gossip_rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      // Pick a random known contact and import its ring members.
      std::vector<std::size_t> contacts;
      for (const auto& ring : buckets[i]) {
        for (const RingEntry& entry : ring) {
          contacts.push_back(members_.PositionOf(entry.member));
        }
      }
      if (contacts.empty()) {
        continue;
      }
      const std::size_t peer = contacts[rng.Index(contacts.size())];
      for (const auto& ring : buckets[peer]) {
        for (const RingEntry& entry : ring) {
          learn(i, members_.PositionOf(entry.member));
        }
      }
      // Prune every bucket back to capacity so gossip messages stay
      // bounded (this is also what keeps ring diversity working).
      for (auto& ring : buckets[i]) {
        if (ring.size() >
            static_cast<std::size_t>(config_.ring_size)) {
          ring = SelectRingMembers(std::move(ring), rng);
        }
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    rings_[i].resize(buckets[i].size());
    for (std::size_t r = 0; r < buckets[i].size(); ++r) {
      rings_[i][r] = SelectRingMembers(std::move(buckets[i][r]), rng);
    }
  }
}

void MeridianOverlay::AddMember(NodeId node, util::Rng& rng) {
  NP_ENSURE(space_ != nullptr, "Build must run before AddMember");
  const std::size_t existing = members_.size();
  const std::size_t position = members_.Add(node);
  rings_.emplace_back(static_cast<std::size_t>(config_.num_rings));
  occ_.emplace_back();
  const std::vector<NodeId>& ids = members_.members();

  // Join protocol: learn candidates from a few random contacts and
  // their ring members.
  std::vector<std::size_t> candidates;
  const std::size_t contacts = std::min<std::size_t>(
      static_cast<std::size_t>(
          std::max(config_.gossip_bootstrap_contacts, 1)),
      existing);
  if (contacts > 0) {
    std::vector<bool> seen(ids.size(), false);
    seen[position] = true;
    for (std::size_t pick : rng.Sample(existing, contacts)) {
      if (!seen[pick]) {
        seen[pick] = true;
        candidates.push_back(pick);
      }
      for (const auto& ring : rings_[pick]) {
        for (const RingEntry& entry : ring) {
          const std::size_t other = members_.PositionOf(entry.member);
          if (!seen[other]) {
            seen[other] = true;
            candidates.push_back(other);
          }
        }
      }
    }
  }

  // Fill the joiner's rings from the learned candidates.
  std::vector<std::vector<RingEntry>> buckets(
      static_cast<std::size_t>(config_.num_rings));
  for (std::size_t other : candidates) {
    const LatencyMs d = space_->Latency(ids[other], node);
    buckets[static_cast<std::size_t>(RingIndexFor(d))].push_back(
        RingEntry{ids[other], d});
  }
  for (std::size_t r = 0; r < buckets.size(); ++r) {
    rings_[position][r] = SelectRingMembers(std::move(buckets[r]), rng);
    for (const RingEntry& entry : rings_[position][r]) {
      occ_[members_.PositionOf(entry.member)].push_back(
          PackOccurrence(node, r));
    }
  }

  // The contacts (and their ring members) learn about the joiner too.
  for (std::size_t other : candidates) {
    const LatencyMs d = space_->Latency(ids[other], node);
    const auto r = static_cast<std::size_t>(RingIndexFor(d));
    auto& ring = rings_[other][r];
    ring.push_back(RingEntry{node, d});
    if (ring.size() > static_cast<std::size_t>(config_.ring_size)) {
      ring = SelectRingMembers(std::move(ring), rng);
    }
    // Recorded whether or not reselection kept the joiner: the purge
    // re-checks the ring, so an unkept entry is just stale.
    occ_[position].push_back(PackOccurrence(ids[other], r));
  }
}

void MeridianOverlay::RemoveMember(NodeId node) {
  const std::size_t position = members_.PositionOf(node);
  NP_ENSURE(position != core::MemberIndex::kNoPosition, "not a member");
  NP_ENSURE(members_.size() > 1, "cannot remove the last member");

  // Purge the leaver from every ring its occurrence entries name.
  // Stale entries (ring reselected the leaver away, or the owner left)
  // erase nothing; erasing the leaver is always correct where it *is*
  // found. Cost: O(entries naming the leaver), independent of overlay
  // size.
  for (const std::uint64_t packed : occ_[position]) {
    const NodeId owner = static_cast<NodeId>(packed >> 8);
    const auto r = static_cast<std::size_t>(packed & 0xFF);
    const std::size_t owner_pos = members_.PositionOf(owner);
    if (owner_pos == core::MemberIndex::kNoPosition ||
        owner_pos == position) {
      continue;
    }
    auto& ring = rings_[owner_pos][r];
    ring.erase(std::remove_if(ring.begin(), ring.end(),
                              [node](const RingEntry& entry) {
                                return entry.member == node;
                              }),
               ring.end());
  }

  const auto removed = members_.Remove(node);
  if (removed.swapped) {
    rings_[removed.position] = std::move(rings_.back());
    occ_[removed.position] = std::move(occ_.back());
  }
  rings_.pop_back();
  occ_.pop_back();
}

const std::vector<std::vector<RingEntry>>& MeridianOverlay::RingsOf(
    NodeId member) const {
  const std::size_t position = members_.PositionOf(member);
  NP_ENSURE(position != core::MemberIndex::kNoPosition,
            "not an overlay member");
  return rings_[position];
}

core::QueryResult MeridianOverlay::FindNearest(
    NodeId target, const core::MeteredSpace& metered, util::Rng& rng) {
  return FindNearestTraced(target, metered, rng).result;
}

TracedResult MeridianOverlay::FindNearestTraced(
    NodeId target, const core::MeteredSpace& metered, util::Rng& rng) {
  NP_ENSURE(space_ != nullptr, "Build must be called before FindNearest");
  TracedResult traced;
  core::QueryResult& result = traced.result;

  // Per-query probe cache: a real Meridian query carries measured
  // results along, so each node measures the target at most once.
  std::unordered_map<NodeId, LatencyMs> probed;
  const auto probe = [&](NodeId node) -> LatencyMs {
    const auto it = probed.find(node);
    if (it != probed.end()) {
      return it->second;
    }
    const LatencyMs d = metered.Latency(node, target);
    probed.emplace(node, d);
    ++result.probes;
    return d;
  };

  NodeId current = members_.at(rng.Index(members_.size()));
  LatencyMs current_distance = probe(current);

  NodeId best = current;
  LatencyMs best_distance = current_distance;

  for (int hop = 0; hop < config_.max_hops; ++hop) {
    const auto& rings = rings_[members_.PositionOf(current)];
    const LatencyMs band_lo = (1.0 - config_.beta) * current_distance;
    const LatencyMs band_hi = (1.0 + config_.beta) * current_distance;

    HopRecord record;
    record.node = current;
    record.distance_to_target_ms = current_distance;

    NodeId next = kInvalidNode;
    LatencyMs next_distance = kInfiniteLatency;
    for (const auto& ring : rings) {
      for (const RingEntry& entry : ring) {
        if (entry.latency_ms < band_lo || entry.latency_ms > band_hi) {
          continue;
        }
        const LatencyMs d = probe(entry.member);
        ++record.candidates_probed;
        if (d < best_distance ||
            (d == best_distance && entry.member < best)) {
          best_distance = d;
          best = entry.member;
        }
        if (d < next_distance) {
          next_distance = d;
          next = entry.member;
        }
      }
    }
    traced.hops.push_back(record);

    // The beta gate: continue only on a significant improvement.
    if (next == kInvalidNode ||
        next_distance >= config_.beta * current_distance) {
      break;
    }
    current = next;
    current_distance = next_distance;
    ++result.hops;
  }

  if (config_.return_policy == ReturnPolicy::kBestProbed) {
    result.found = best;
    result.found_latency_ms = best_distance;
  } else {
    result.found = current;
    result.found_latency_ms = current_distance;
  }
  return traced;
}

}  // namespace np::meridian
