#include "meridian/meridian.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <unordered_map>
#include <utility>

#include "util/error.h"
#include "util/parallel.h"

namespace np::meridian {

MeridianOverlay::MeridianOverlay(MeridianConfig config)
    : config_(config) {
  NP_ENSURE(config_.alpha_ms > 0.0, "alpha must be positive");
  NP_ENSURE(config_.s > 1.0, "ring growth factor must exceed 1");
  NP_ENSURE(config_.num_rings >= 1 && config_.num_rings <= 255,
            "rings must be in [1, 255]");
  NP_ENSURE(config_.ring_size >= 1, "ring size must be positive");
  NP_ENSURE(config_.beta > 0.0 && config_.beta < 1.0,
            "beta must be in (0, 1)");
  NP_ENSURE(config_.max_hops >= 1, "max hops must be positive");
}

int MeridianOverlay::RingIndexFor(LatencyMs latency_ms) const {
  if (latency_ms < config_.alpha_ms) {
    return 0;
  }
  const int ring =
      1 + static_cast<int>(
              std::floor(std::log(latency_ms / config_.alpha_ms) /
                         std::log(config_.s)));
  return std::min(ring, config_.num_rings - 1);
}

std::vector<RingEntry> MeridianOverlay::SelectRingMembers(
    std::vector<RingEntry> candidates, util::Rng& rng) const {
  const auto k = static_cast<std::size_t>(config_.ring_size);
  if (candidates.size() <= k) {
    return candidates;
  }
  switch (config_.selection) {
    case RingSelectionPolicy::kRandom: {
      rng.Shuffle(candidates);
      candidates.resize(k);
      return candidates;
    }
    case RingSelectionPolicy::kSumDistance:
    case RingSelectionPolicy::kMaxMin: {
      // Greedy diversity selection: seed with a random candidate, then
      // repeatedly add the candidate that maximizes its distance score
      // to the already-selected set (min-distance for kMaxMin — the
      // k-center rule — or sum-distance). `score[i]` carries the
      // incremental state so each round is O(|candidates|).
      const bool use_min = config_.selection == RingSelectionPolicy::kMaxMin;
      std::vector<RingEntry> selected;
      selected.reserve(k);
      std::vector<bool> taken(candidates.size(), false);
      std::vector<double> score(
          candidates.size(),
          use_min ? std::numeric_limits<double>::infinity() : 0.0);
      std::size_t seed = rng.Index(candidates.size());
      while (selected.size() < k) {
        taken[seed] = true;
        selected.push_back(candidates[seed]);
        if (selected.size() == k) {
          break;
        }
        const NodeId just_added = candidates[seed].member;
        const core::ProbePolicy& policy = probe_policy();
        double best_score = -1.0;
        std::size_t best_index = candidates.size();
        for (std::size_t i = 0; i < candidates.size(); ++i) {
          if (taken[i]) {
            continue;
          }
          // A lost pairwise probe leaves score[i] at its previous
          // (still-valid) value — the candidate just misses this
          // round's diversity update.
          const auto measured =
              policy.Probe(*space_, candidates[i].member, just_added);
          if (measured) {
            const double d = *measured;
            score[i] = use_min ? std::min(score[i], d) : score[i] + d;
          }
          if (score[i] > best_score) {
            best_score = score[i];
            best_index = i;
          }
        }
        NP_ENSURE(best_index < candidates.size(),
                  "ring selection ran out of candidates");
        seed = best_index;
      }
      return selected;
    }
  }
  NP_ENSURE(false, "unknown ring selection policy");
  return {};
}

void MeridianOverlay::Build(const core::LatencySpace& space,
                            std::vector<NodeId> members, util::Rng& rng) {
  BuildImpl(space, std::move(members), rng, 1);
}

void MeridianOverlay::ParallelBuild(const core::LatencySpace& space,
                                    std::vector<NodeId> members,
                                    util::Rng& rng, int num_threads) {
  BuildImpl(space, std::move(members), rng, num_threads);
}

void MeridianOverlay::BuildImpl(const core::LatencySpace& space,
                                std::vector<NodeId> members, util::Rng& rng,
                                int num_threads) {
  NP_ENSURE(!members.empty(), "meridian requires at least one member");
  space_ = &space;
  members_.Reset(std::move(members));
  rings_.assign(members_.size(), {});
  if (config_.full_knowledge) {
    BuildFullKnowledge(space, rng, num_threads);
  } else {
    // Gossip rounds exchange state between members and are inherently
    // order-dependent; they run serially for any thread budget.
    BuildByGossip(space, rng);
  }

  // Occurrence pass (serial: a ring member's list is appended from
  // every owner, so fan-out here would race).
  occ_.assign(members_.size(), {});
  for (std::size_t i = 0; i < members_.size(); ++i) {
    for (std::size_t r = 0; r < rings_[i].size(); ++r) {
      for (const RingEntry& entry : rings_[i][r]) {
        occ_[members_.PositionOf(entry.member)].push_back(
            PackOccurrence(members_.at(i), r));
      }
    }
  }
  occ_floor_.assign(members_.size(), kOccCompactMin / 2);
  for (std::size_t i = 0; i < members_.size(); ++i) {
    occ_floor_[i] = std::max(occ_[i].size(), kOccCompactMin / 2);
  }
}

void MeridianOverlay::BuildFullKnowledge(const core::LatencySpace& space,
                                         util::Rng& rng, int num_threads) {
  const std::vector<NodeId>& ids = members_.members();
  // One base draw, then a private stream per member keyed by its node
  // id: iteration i touches only rings_[i], so any thread count
  // produces the serial result bit for bit.
  const std::uint64_t base = rng();
  const core::ProbePolicy& policy = probe_policy();
  util::ParallelFor(0, ids.size(), num_threads, [&](std::size_t i) {
    const NodeId owner = ids[i];
    util::Rng mrng(util::Mix64(base ^ static_cast<std::uint64_t>(owner)));
    std::vector<std::vector<RingEntry>> buckets(
        static_cast<std::size_t>(config_.num_rings));
    // The owner rides second so row-caching backends reuse its row.
    for (const NodeId other : ids) {
      if (other == owner) {
        continue;
      }
      const auto measured = policy.Probe(space, other, owner);
      if (!measured) {
        continue;  // unreachable during build: not ringed
      }
      const LatencyMs d = *measured;
      buckets[static_cast<std::size_t>(RingIndexFor(d))].push_back(
          RingEntry{other, d});
    }
    rings_[i].resize(buckets.size());
    for (std::size_t r = 0; r < buckets.size(); ++r) {
      rings_[i][r] = SelectRingMembers(std::move(buckets[r]), mrng);
    }
  });
}

void MeridianOverlay::BuildByGossip(const core::LatencySpace& space,
                                    util::Rng& rng) {
  NP_ENSURE(config_.gossip_bootstrap_contacts >= 1,
            "gossip needs at least one bootstrap contact");
  NP_ENSURE(config_.gossip_rounds >= 1, "gossip needs at least one round");
  const std::vector<NodeId>& ids = members_.members();
  const std::size_t n = ids.size();

  // Known-candidate sets per node (ring buckets, unbounded during
  // discovery; selection prunes at the end of every round).
  std::vector<std::vector<std::vector<RingEntry>>> buckets(
      n, std::vector<std::vector<RingEntry>>(
             static_cast<std::size_t>(config_.num_rings)));
  // Membership bitmaps to avoid duplicate learning.
  std::vector<std::vector<bool>> knows(n, std::vector<bool>(n, false));

  const core::ProbePolicy& policy = probe_policy();
  const auto learn = [&](std::size_t owner, std::size_t other) {
    if (owner == other || knows[owner][other]) {
      return;
    }
    const auto measured = policy.Probe(space, ids[other], ids[owner]);
    if (!measured) {
      return;  // lost handshake: a later gossip round may retry
    }
    knows[owner][other] = true;
    buckets[owner][static_cast<std::size_t>(RingIndexFor(*measured))]
        .push_back(RingEntry{ids[other], *measured});
  };

  // Bootstrap: a few random contacts each (the join server's seed
  // list), symmetric so the gossip graph starts connected.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = std::min<std::size_t>(
        static_cast<std::size_t>(config_.gossip_bootstrap_contacts), n - 1);
    for (std::size_t pick : rng.Sample(n - 1, k)) {
      const std::size_t j = pick >= i ? pick + 1 : pick;
      learn(i, j);
      learn(j, i);
    }
  }

  for (int round = 0; round < config_.gossip_rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      // Pick a random known contact and import its ring members.
      std::vector<std::size_t> contacts;
      for (const auto& ring : buckets[i]) {
        for (const RingEntry& entry : ring) {
          contacts.push_back(members_.PositionOf(entry.member));
        }
      }
      if (contacts.empty()) {
        continue;
      }
      const std::size_t peer = contacts[rng.Index(contacts.size())];
      for (const auto& ring : buckets[peer]) {
        for (const RingEntry& entry : ring) {
          learn(i, members_.PositionOf(entry.member));
        }
      }
      // Prune every bucket back to capacity so gossip messages stay
      // bounded (this is also what keeps ring diversity working).
      for (auto& ring : buckets[i]) {
        if (ring.size() >
            static_cast<std::size_t>(config_.ring_size)) {
          ring = SelectRingMembers(std::move(ring), rng);
        }
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    rings_[i].resize(buckets[i].size());
    for (std::size_t r = 0; r < buckets[i].size(); ++r) {
      rings_[i][r] = SelectRingMembers(std::move(buckets[i][r]), rng);
    }
  }
}

void MeridianOverlay::AddMember(NodeId node, util::Rng& rng) {
  NP_ENSURE(space_ != nullptr, "Build must run before AddMember");
  const std::size_t existing = members_.size();
  const std::size_t position = members_.Add(node);
  rings_.emplace_back(static_cast<std::size_t>(config_.num_rings));
  occ_.emplace_back();
  occ_floor_.push_back(kOccCompactMin / 2);
  const std::vector<NodeId>& ids = members_.members();
  const core::ProbePolicy& policy = probe_policy();

  // Join protocol: learn candidates from a few random contacts and
  // their ring members.
  std::vector<std::size_t> candidates;
  const std::size_t contacts = std::min<std::size_t>(
      static_cast<std::size_t>(
          std::max(config_.gossip_bootstrap_contacts, 1)),
      existing);
  if (contacts > 0) {
    std::vector<bool> seen(ids.size(), false);
    seen[position] = true;
    for (std::size_t pick : rng.Sample(existing, contacts)) {
      if (!seen[pick]) {
        seen[pick] = true;
        candidates.push_back(pick);
      }
      for (const auto& ring : rings_[pick]) {
        for (const RingEntry& entry : ring) {
          const std::size_t other = members_.PositionOf(entry.member);
          if (!seen[other]) {
            seen[other] = true;
            candidates.push_back(other);
          }
        }
      }
    }
  }

  // Fill the joiner's rings from the learned candidates. A candidate
  // whose handshake probe is lost is simply not learned.
  std::vector<std::vector<RingEntry>> buckets(
      static_cast<std::size_t>(config_.num_rings));
  for (std::size_t other : candidates) {
    const auto measured = policy.Probe(*space_, ids[other], node);
    if (!measured) {
      continue;
    }
    buckets[static_cast<std::size_t>(RingIndexFor(*measured))].push_back(
        RingEntry{ids[other], *measured});
  }
  for (std::size_t r = 0; r < buckets.size(); ++r) {
    rings_[position][r] = SelectRingMembers(std::move(buckets[r]), rng);
    for (const RingEntry& entry : rings_[position][r]) {
      const std::size_t entry_pos = members_.PositionOf(entry.member);
      occ_[entry_pos].push_back(PackOccurrence(node, r));
      MaybeCompactOcc(entry_pos);
    }
  }

  // The contacts (and their ring members) learn about the joiner too
  // (a separate handshake in this direction, billed separately — and
  // lost independently).
  for (std::size_t other : candidates) {
    const auto measured = policy.Probe(*space_, ids[other], node);
    if (!measured) {
      continue;
    }
    const LatencyMs d = *measured;
    const auto r = static_cast<std::size_t>(RingIndexFor(d));
    auto& ring = rings_[other][r];
    ring.push_back(RingEntry{node, d});
    if (ring.size() > static_cast<std::size_t>(config_.ring_size)) {
      ring = SelectRingMembers(std::move(ring), rng);
    }
    // Recorded whether or not reselection kept the joiner: the purge
    // re-checks the ring, so an unkept entry is just stale.
    occ_[position].push_back(PackOccurrence(ids[other], r));
    MaybeCompactOcc(position);
  }
}

void MeridianOverlay::RemoveMember(NodeId node) {
  const std::size_t position = members_.PositionOf(node);
  NP_ENSURE(position != core::MemberIndex::kNoPosition, "not a member");
  NP_ENSURE(members_.size() > 1, "cannot remove the last member");

  // Purge the leaver from every ring its occurrence entries name.
  // Stale entries (ring reselected the leaver away, or the owner left)
  // erase nothing; erasing the leaver is always correct where it *is*
  // found. Cost: O(entries naming the leaver), independent of overlay
  // size.
  for (const std::uint64_t packed : occ_[position]) {
    const NodeId owner = static_cast<NodeId>(packed >> 8);
    const auto r = static_cast<std::size_t>(packed & 0xFF);
    const std::size_t owner_pos = members_.PositionOf(owner);
    if (owner_pos == core::MemberIndex::kNoPosition ||
        owner_pos == position) {
      continue;
    }
    auto& ring = rings_[owner_pos][r];
    ring.erase(std::remove_if(ring.begin(), ring.end(),
                              [node](const RingEntry& entry) {
                                return entry.member == node;
                              }),
               ring.end());
  }

  const auto removed = members_.Remove(node);
  if (removed.swapped) {
    rings_[removed.position] = std::move(rings_.back());
    occ_[removed.position] = std::move(occ_.back());
    occ_floor_[removed.position] = occ_floor_.back();
  }
  rings_.pop_back();
  occ_.pop_back();
  occ_floor_.pop_back();
}

const std::vector<std::vector<RingEntry>>& MeridianOverlay::RingsOf(
    NodeId member) const {
  const std::size_t position = members_.PositionOf(member);
  NP_ENSURE(position != core::MemberIndex::kNoPosition,
            "not an overlay member");
  return rings_[position];
}

std::size_t MeridianOverlay::OccurrenceEntries(NodeId member) const {
  const std::size_t position = members_.PositionOf(member);
  NP_ENSURE(position != core::MemberIndex::kNoPosition,
            "not an overlay member");
  return occ_[position].size();
}

void MeridianOverlay::MaybeCompactOcc(std::size_t position) {
  auto& occ = occ_[position];
  if (occ.size() < kOccCompactMin ||
      occ.size() < 2 * occ_floor_[position]) {
    return;
  }
  const NodeId self = members_.at(position);
  std::sort(occ.begin(), occ.end());
  occ.erase(std::unique(occ.begin(), occ.end()), occ.end());
  std::size_t kept = 0;
  for (const std::uint64_t packed : occ) {
    const NodeId owner = static_cast<NodeId>(packed >> 8);
    const auto r = static_cast<std::size_t>(packed & 0xFF);
    const std::size_t owner_pos = members_.PositionOf(owner);
    if (owner_pos == core::MemberIndex::kNoPosition ||
        owner_pos == position || r >= rings_[owner_pos].size()) {
      continue;
    }
    const auto& ring = rings_[owner_pos][r];
    const bool live = std::any_of(
        ring.begin(), ring.end(),
        [self](const RingEntry& entry) { return entry.member == self; });
    if (live) {
      occ[kept++] = packed;
    }
  }
  occ.resize(kept);
  occ.shrink_to_fit();
  occ_floor_[position] = std::max(occ.size(), kOccCompactMin / 2);
}

core::QueryResult MeridianOverlay::FindNearest(
    NodeId target, const core::MeteredSpace& metered, util::Rng& rng) {
  return FindNearestTraced(target, metered, rng).result;
}

TracedResult MeridianOverlay::FindNearestTraced(
    NodeId target, const core::MeteredSpace& metered, util::Rng& rng) {
  NP_ENSURE(space_ != nullptr, "Build must be called before FindNearest");
  TracedResult traced;
  core::QueryResult& result = traced.result;

  // Per-query probe cache: a real Meridian query carries measured
  // results along, so each node measures the target at most once —
  // including give-ups, which are cached as nullopt (the query does
  // not re-try a peer its policy already declared dead).
  std::unordered_map<NodeId, std::optional<LatencyMs>> probed;
  const core::ProbePolicy& policy = probe_policy();
  const auto probe = [&](NodeId node) -> std::optional<LatencyMs> {
    const auto it = probed.find(node);
    if (it != probed.end()) {
      return it->second;
    }
    const auto d = policy.Probe(metered, node, target);
    probed.emplace(node, d);
    ++result.probes;
    return d;
  };

  NodeId current = members_.at(rng.Index(members_.size()));
  auto start = probe(current);
  for (int redraw = 0; !start && redraw < core::kStartRedraws; ++redraw) {
    current = members_.at(rng.Index(members_.size()));
    start = probe(current);
  }
  if (!start) {
    return traced;  // found stays kInvalidNode: give-up
  }
  LatencyMs current_distance = *start;

  NodeId best = current;
  LatencyMs best_distance = current_distance;

  for (int hop = 0; hop < config_.max_hops; ++hop) {
    const auto& rings = rings_[members_.PositionOf(current)];
    const LatencyMs band_lo = (1.0 - config_.beta) * current_distance;
    const LatencyMs band_hi = (1.0 + config_.beta) * current_distance;

    HopRecord record;
    record.node = current;
    record.distance_to_target_ms = current_distance;

    NodeId next = kInvalidNode;
    LatencyMs next_distance = kInfiniteLatency;
    for (const auto& ring : rings) {
      for (const RingEntry& entry : ring) {
        if (entry.latency_ms < band_lo || entry.latency_ms > band_hi) {
          continue;
        }
        const auto measured = probe(entry.member);
        ++record.candidates_probed;
        if (!measured) {
          continue;  // stale/dead ring entry: route around it
        }
        const LatencyMs d = *measured;
        if (d < best_distance ||
            (d == best_distance && entry.member < best)) {
          best_distance = d;
          best = entry.member;
        }
        if (d < next_distance) {
          next_distance = d;
          next = entry.member;
        }
      }
    }
    traced.hops.push_back(record);

    // The beta gate: continue only on a significant improvement.
    if (next == kInvalidNode ||
        next_distance >= config_.beta * current_distance) {
      break;
    }
    current = next;
    current_distance = next_distance;
    ++result.hops;
  }

  if (config_.return_policy == ReturnPolicy::kBestProbed) {
    result.found = best;
    result.found_latency_ms = best_distance;
  } else {
    result.found = current;
    result.found_latency_ms = current_distance;
  }
  return traced;
}

}  // namespace np::meridian
