#!/usr/bin/env python3
"""Check that internal markdown links resolve to real files.

Scans every tracked *.md file (or the files passed on the command
line) for [text](target) links, skips external schemes and pure
anchors, resolves each target relative to the linking file, and fails
(exit 1) listing every dangling link. Used by the CI docs job so
README/docs restructures cannot leave broken cross-references behind.

Usage:
  scripts/check_docs_links.py [FILE.md ...]
"""

import re
import subprocess
import sys
from pathlib import Path

# Inline links: [text](target). Images share the syntax; reference
# definitions and autolinks are out of scope for this repo's docs.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def tracked_markdown(root):
    out = subprocess.run(
        ["git", "ls-files", "*.md", "**/*.md"],
        cwd=root, capture_output=True, text=True, check=True)
    return sorted({root / line for line in out.stdout.splitlines() if line})


def check_file(path, root):
    dangling = []
    text = path.read_text(encoding="utf-8")
    # Strip fenced code blocks: their brackets are code, not links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            dangling.append((target, path.relative_to(root)))
    return dangling


def main():
    root = Path(
        subprocess.run(["git", "rev-parse", "--show-toplevel"],
                       capture_output=True, text=True,
                       check=True).stdout.strip())
    files = ([Path(arg).resolve() for arg in sys.argv[1:]]
             or tracked_markdown(root))
    dangling = []
    for path in files:
        dangling.extend(check_file(path, root))
    if dangling:
        print("dangling internal links:")
        for target, source in dangling:
            print(f"  {source}: ({target})")
        return 1
    print(f"ok: {len(files)} markdown files, all internal links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
