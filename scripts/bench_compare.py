#!/usr/bin/env python3
"""Compare a BENCH_*.json report against a committed baseline.

Fails (exit 1) when any watched phase's wall_ms regressed by more than
the threshold versus the baseline. Used by CI after `bench_smoke` so a
perf regression in the simulation core fails the pull request, not a
reader of next month's numbers.

Usage:
  scripts/bench_compare.py BASELINE CURRENT [--threshold 0.20]
                           [--phases metric_repair] [--update]
  scripts/bench_compare.py BASELINE CURRENT --derived n --threshold 0.05
  scripts/bench_compare.py BASELINE CURRENT \
      --require "blackout_tiers_gini_over_meridian>=1.05" \
      --require "loss30_meridian_p_exact>=0.5"

--phases takes comma-separated name prefixes; default watches the
metric_repair phases (the core hot path). --update rewrites BASELINE
from CURRENT instead of comparing (for refreshing the committed
numbers after an intentional change; commit the result).

--derived switches to comparing the report's "derived" metrics
(accuracy/traffic scalars) instead of phase wall times: every baseline
metric whose name starts with one of the comma-separated prefixes must
be present in the current report and agree within the threshold
(relative, both directions — derived metrics are deterministic, so a
shift either way means the simulation changed, unlike wall-ms which
only regresses). Use this for gates that must be robust across
machines of different speeds. Key sets must match exactly under the
watched prefixes: a baseline metric missing from the current report
AND a current metric missing from the baseline are both hard failures
— either direction of schema drift would otherwise shrink the watched
set and silently disarm the gate (regenerate the baseline with
--update after an intentional schema change).

--require (repeatable) asserts an absolute bound on a derived metric
of the CURRENT report: "name>=value", "name>value", "name<=value" or
"name<value". Unlike --derived this gates a property, not drift — use
it for invariants a refactor must never silently lose (e.g. the
blackout Gini gap staying > 1). When --require is given without
--derived, the phase wall-time comparison is skipped.

--np-run switches the input format: the single REPORT argument is an
np_run scenario report (NP_RUN_*.json), not a bench report, and its
per-algorithm metrics are flattened into derived-style keys that
--require can gate directly:

  scripts/bench_compare.py --np-run NP_RUN_zipf_hotspot.json \
      --require "meridian_load_gini_max<=0.6"

Flattened keys per algorithm: run-level scalars
(<algo>_messages_per_query, <algo>_maintenance_per_event,
<algo>_failed_queries, and <algo>_load_{total,max,median,gini} when the
run tracked load) plus <algo>_<field>_{min,max,mean} over the epochs
for every numeric per-epoch field (p_exact_closest, p_query_failed,
load_gini, p_exact_reachable, ...). Only --require composes with
--np-run; there is no baseline.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def phases_by_name(report):
    return {phase["name"]: phase for phase in report.get("phases", [])}


def compare_derived(baseline, current, args):
    prefixes = [p for p in args.derived.split(",") if p]
    base = baseline.get("derived", {})
    cur = current.get("derived", {})
    watched = sorted(
        name
        for name in base
        if any(name.startswith(prefix) for prefix in prefixes)
    )
    if not watched:
        print(
            f"bench_compare: no baseline derived metric matches prefixes "
            f"{prefixes}",
            file=sys.stderr,
        )
        return 2

    failures = []
    width = max(len(name) for name in watched)
    print(f"bench_compare: derived metrics, tolerance ±{args.threshold:.0%}, "
          f"{len(watched)} watched metric(s)")
    for name in watched:
        base_value = base[name]
        if name not in cur:
            failures.append(f"{name}: missing from current report")
            print(f"  {name:<{width}}  baseline {base_value:12.4f}  MISSING")
            continue
        cur_value = cur[name]
        scale = max(abs(base_value), abs(cur_value))
        signed_rel = (cur_value - base_value) / scale if scale > 0 else 0.0
        verdict = "ok"
        if abs(signed_rel) > args.threshold:
            verdict = "DIVERGED"
            failures.append(
                f"{name}: {base_value:.6g} -> {cur_value:.6g} "
                f"({signed_rel:+.1%})"
            )
        print(
            f"  {name:<{width}}  baseline {base_value:12.4f}  "
            f"current {cur_value:12.4f}  ({signed_rel:+6.1%})  {verdict}"
        )

    # Symmetric drift check: a current metric under a watched prefix
    # that the baseline does not know is the same schema-drift hazard
    # as a missing one — were the baseline ever regenerated from such
    # a report, the unknown key would join the gate unreviewed (and a
    # rename would shrink the watched set to the surviving keys).
    unknown = sorted(
        name
        for name in cur
        if any(name.startswith(prefix) for prefix in prefixes)
        and name not in base
    )
    for name in unknown:
        failures.append(
            f"{name}: in current report but not in baseline "
            f"(schema drift; regenerate the baseline with --update if "
            f"intentional)"
        )
        print(f"  {name}  current {cur[name]:12.4f}  NOT-IN-BASELINE")

    if failures:
        print("bench_compare: FAILED", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("bench_compare: ok")
    return 0


def parse_requirement(spec):
    for op in (">=", "<=", ">", "<"):  # two-char ops first
        if op in spec:
            name, _, raw = spec.partition(op)
            name = name.strip()
            try:
                value = float(raw)
            except ValueError:
                raise ValueError(f"bad requirement value in {spec!r}")
            if not name:
                raise ValueError(f"bad requirement name in {spec!r}")
            return name, op, value
    raise ValueError(
        f"requirement {spec!r} has no comparator (use >=, >, <= or <)"
    )


def check_requirements(current, specs):
    ops = {
        ">=": lambda a, b: a >= b,
        ">": lambda a, b: a > b,
        "<=": lambda a, b: a <= b,
        "<": lambda a, b: a < b,
    }
    derived = current.get("derived", {})
    failures = []
    print(f"bench_compare: {len(specs)} required bound(s)")
    for spec in specs:
        name, op, bound = parse_requirement(spec)
        if name not in derived:
            failures.append(f"{name}: missing from current report")
            print(f"  {name} {op} {bound:g}  MISSING")
            continue
        value = derived[name]
        ok = ops[op](value, bound)
        print(f"  {name} = {value:.6g}  (required {op} {bound:g})  "
              f"{'ok' if ok else 'VIOLATED'}")
        if not ok:
            failures.append(f"{name}: {value:.6g} violates {op} {bound:g}")
    if failures:
        print("bench_compare: FAILED", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


def flatten_np_run(report):
    """Per-algorithm derived-style metrics from an np_run report."""
    derived = {}
    for algo in report.get("algorithms", []):
        name = algo["name"]
        for key in ("messages_per_query", "maintenance_per_event"):
            if key in algo:
                derived[f"{name}_{key}"] = float(algo[key])
        if "fault" in algo:
            derived[f"{name}_failed_queries"] = float(
                algo["fault"].get("failed_queries", 0))
        for key, value in algo.get("load", {}).items():
            derived[f"{name}_load_{key}"] = float(value)
        epochs = algo.get("epochs", [])
        fields = sorted({
            field
            for epoch in epochs
            for field, value in epoch.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        })
        for field in fields:
            values = [float(e[field]) for e in epochs if field in e]
            if not values:
                continue
            derived[f"{name}_{field}_min"] = min(values)
            derived[f"{name}_{field}_max"] = max(values)
            derived[f"{name}_{field}_mean"] = sum(values) / len(values)
    return derived


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current", nargs="?", default=None)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed relative wall_ms regression (default 0.20 = +20%%)",
    )
    parser.add_argument(
        "--phases",
        default="metric_repair",
        help="comma-separated phase-name prefixes to watch",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite BASELINE from CURRENT instead of comparing",
    )
    parser.add_argument(
        "--derived",
        default=None,
        metavar="PREFIXES",
        help="compare 'derived' metrics matching these comma-separated "
        "name prefixes (relative, both directions) instead of phase "
        "wall times",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="BOUND",
        help="assert an absolute bound on a derived metric of CURRENT, "
        'e.g. --require "blackout_tiers_gini_over_meridian>=1.05"; '
        "repeatable, all bounds must hold",
    )
    parser.add_argument(
        "--np-run",
        action="store_true",
        help="treat the single REPORT argument as an np_run scenario "
        "report and gate --require bounds on its flattened "
        "per-algorithm metrics (no baseline)",
    )
    args = parser.parse_args()

    if args.np_run:
        if args.current is not None or args.update or args.derived:
            print(
                "bench_compare: --np-run takes a single report and only "
                "composes with --require",
                file=sys.stderr,
            )
            return 2
        if not args.require:
            print(
                "bench_compare: --np-run needs at least one --require bound",
                file=sys.stderr,
            )
            return 2
        flattened = {"derived": flatten_np_run(load(args.baseline))}
        return check_requirements(flattened, args.require)

    if args.current is None:
        print("bench_compare: CURRENT report argument is required",
              file=sys.stderr)
        return 2

    current = load(args.current)

    if args.update:
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(current, f, indent=2)
            f.write("\n")
        print(f"bench_compare: baseline {args.baseline} updated from "
              f"{args.current}")
        return 0

    baseline = load(args.baseline)
    if baseline.get("scale") != current.get("scale"):
        print(
            f"bench_compare: scale mismatch (baseline "
            f"{baseline.get('scale')!r} vs current {current.get('scale')!r});"
            f" regenerate the baseline at the same NP_BENCH_SCALE",
            file=sys.stderr,
        )
        return 2

    require_status = 0
    if args.require:
        require_status = check_requirements(current, args.require)

    if args.derived is not None:
        return compare_derived(baseline, current, args) or require_status
    if args.require:
        return require_status

    prefixes = [p for p in args.phases.split(",") if p]
    base_phases = phases_by_name(baseline)
    cur_phases = phases_by_name(current)

    watched = sorted(
        name
        for name in base_phases
        if any(name.startswith(prefix) for prefix in prefixes)
    )
    if not watched:
        print(
            f"bench_compare: no baseline phase matches prefixes {prefixes}",
            file=sys.stderr,
        )
        return 2

    failures = []
    width = max(len(name) for name in watched)
    print(f"bench_compare: threshold +{args.threshold:.0%}, "
          f"{len(watched)} watched phase(s)")
    for name in watched:
        base_ms = base_phases[name]["wall_ms"]
        cur = cur_phases.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current report")
            print(f"  {name:<{width}}  baseline {base_ms:10.1f} ms  MISSING")
            continue
        cur_ms = cur["wall_ms"]
        ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + args.threshold:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {base_ms:.1f} ms -> {cur_ms:.1f} ms "
                f"({ratio - 1.0:+.1%})"
            )
        print(
            f"  {name:<{width}}  baseline {base_ms:10.1f} ms  "
            f"current {cur_ms:10.1f} ms  ({ratio - 1.0:+6.1%})  {verdict}"
        )

    if failures:
        print("bench_compare: FAILED", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("bench_compare: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
