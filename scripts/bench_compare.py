#!/usr/bin/env python3
"""Compare a BENCH_*.json report against a committed baseline.

Fails (exit 1) when any watched phase's wall_ms regressed by more than
the threshold versus the baseline. Used by CI after `bench_smoke` so a
perf regression in the simulation core fails the pull request, not a
reader of next month's numbers.

Usage:
  scripts/bench_compare.py BASELINE CURRENT [--threshold 0.20]
                           [--phases metric_repair] [--update]

--phases takes comma-separated name prefixes; default watches the
metric_repair phases (the core hot path). --update rewrites BASELINE
from CURRENT instead of comparing (for refreshing the committed
numbers after an intentional change; commit the result).
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def phases_by_name(report):
    return {phase["name"]: phase for phase in report.get("phases", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed relative wall_ms regression (default 0.20 = +20%%)",
    )
    parser.add_argument(
        "--phases",
        default="metric_repair",
        help="comma-separated phase-name prefixes to watch",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite BASELINE from CURRENT instead of comparing",
    )
    args = parser.parse_args()

    current = load(args.current)

    if args.update:
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(current, f, indent=2)
            f.write("\n")
        print(f"bench_compare: baseline {args.baseline} updated from "
              f"{args.current}")
        return 0

    baseline = load(args.baseline)
    if baseline.get("scale") != current.get("scale"):
        print(
            f"bench_compare: scale mismatch (baseline "
            f"{baseline.get('scale')!r} vs current {current.get('scale')!r});"
            f" regenerate the baseline at the same NP_BENCH_SCALE",
            file=sys.stderr,
        )
        return 2

    prefixes = [p for p in args.phases.split(",") if p]
    base_phases = phases_by_name(baseline)
    cur_phases = phases_by_name(current)

    watched = sorted(
        name
        for name in base_phases
        if any(name.startswith(prefix) for prefix in prefixes)
    )
    if not watched:
        print(
            f"bench_compare: no baseline phase matches prefixes {prefixes}",
            file=sys.stderr,
        )
        return 2

    failures = []
    width = max(len(name) for name in watched)
    print(f"bench_compare: threshold +{args.threshold:.0%}, "
          f"{len(watched)} watched phase(s)")
    for name in watched:
        base_ms = base_phases[name]["wall_ms"]
        cur = cur_phases.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current report")
            print(f"  {name:<{width}}  baseline {base_ms:10.1f} ms  MISSING")
            continue
        cur_ms = cur["wall_ms"]
        ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + args.threshold:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {base_ms:.1f} ms -> {cur_ms:.1f} ms "
                f"({ratio - 1.0:+.1%})"
            )
        print(
            f"  {name:<{width}}  baseline {base_ms:10.1f} ms  "
            f"current {cur_ms:10.1f} ms  ({ratio - 1.0:+6.1%})  {verdict}"
        )

    if failures:
        print("bench_compare: FAILED", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("bench_compare: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
