// Figure 9: Meridian accuracy and the hub-latency of the discovered
// peer as functions of delta, the intra-cluster latency variation.
//
// Paper setup (§4): 125 end-networks per cluster, 2 peers each, ~2.4K
// overlay, beta = 0.5; delta swept from 0 (perfect clustering
// condition) to 1.
//
// Expected shape: P(exact closest) improves markedly as delta grows
// (the condition weakens); the median latency-to-hub of the peers
// found on *wrong* answers falls with delta (Meridian preferentially
// picks hub-near peers, concentrating load on them).
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/reporter.h"
#include "core/experiment.h"
#include "matrix/generators.h"
#include "meridian/meridian.h"
#include "util/stats.h"

#include "util/contract.h"

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "fig9_meridian_delta",
      "P(correct closest) rises from ~0.05 at delta=0 to ~0.4 at "
      "delta=1; median latency from the found (wrong) peer to its "
      "cluster-hub falls from ~5 ms toward ~1.5-2 ms. 125 "
      "end-networks/cluster, beta=0.5, 3 runs (median [min, max]).");

  const bool quick = np::bench::QuickScale();
  const int num_queries = quick ? 500 : 5000;
  const int num_seeds = 3;

  np::bench::Reporter reporter("fig9_meridian_delta");
  np::util::Table table({"delta", "p_exact_med", "p_exact_min",
                         "p_exact_max", "wrong_hub_latency_med_ms",
                         "mean_probes"});
  for (const double delta :
       {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto phase =
        reporter.Phase("sweep_delta_" + std::to_string(delta).substr(0, 3),
                       static_cast<double>(num_queries) * num_seeds);
    std::vector<double> exact_runs;
    std::vector<double> hub_runs;
    double probes = 0.0;
    for (int seed = 1; seed <= num_seeds; ++seed) {
      np::matrix::ClusteredConfig config;
      config.nets_per_cluster = 125;
      config.num_clusters = 10;  // 1250 nets -> 2500 peers
      config.peers_per_net = 2;
      config.delta = delta;
      np::util::Rng world_rng(static_cast<std::uint64_t>(seed) * 991 +
                              static_cast<std::uint64_t>(delta * 100));
      const auto world = np::matrix::GenerateClustered(config, world_rng);

      np::meridian::MeridianOverlay meridian{np::meridian::MeridianConfig{}};
      np::core::ExperimentConfig econfig;
      econfig.overlay_size = world.layout.peer_count() - 100;
      econfig.num_queries = num_queries;
      np::util::Rng run_rng(static_cast<std::uint64_t>(seed) * 13 + 3);
      const auto metrics = np::core::RunClusteredExperiment(
          world, meridian, econfig, run_rng);
      exact_runs.push_back(metrics.p_exact_closest);
      hub_runs.push_back(metrics.median_wrong_hub_latency_ms);
      probes += metrics.mean_probes;
    }
    phase.Stop();
    const auto exact = np::util::RunSpread::Of(exact_runs);
    const auto hub = np::util::RunSpread::Of(hub_runs);
    table.AddNumericRow({delta, exact.median, exact.min, exact.max,
                         hub.median, probes / num_seeds},
                        3);
  }
  np::bench::PrintTable(table);
  reporter.Write();
  np::bench::PrintNote(
      "wrong_hub_latency = median latency from the found peer's "
      "end-network to its cluster-hub over queries that missed the "
      "exact closest (paper Fig 9 right axis).");
  return 0;
}
