// Machine-readable bench reporting: per-phase steady_clock timing and
// a BENCH_<name>.json artifact, so the perf trajectory of the
// simulation core is tracked run over run (the ROADMAP's "as fast as
// the hardware allows" needs numbers, not impressions).
//
// Usage:
//   np::bench::Reporter reporter("core");
//   {
//     auto phase = reporter.Phase("metric_repair_blocked", /*ops=*/n3);
//     matrix.MetricRepair();
//   }  // phase records wall time on destruction
//   reporter.Derive("speedup_metric_repair", serial_ms / blocked_ms);
//   reporter.Write();  // BENCH_core.json (or $NP_BENCH_JSON_DIR/...)
//
// JSON schema (stable; consumed by CI — see docs/BENCHMARKS.md):
//   {
//     "bench": "<name>",
//     "scale": "quick" | "full",
//     "hardware_threads": <int>,
//     "phases": [
//       {"name": "...", "wall_ms": <double>,
//        "ops": <double or 0>, "ops_per_sec": <double or 0>}
//     ],
//     "derived": {"<metric>": <double>, ...}
//   }
#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace np::bench {

class Reporter;

/// RAII phase timer; measures from construction to destruction (or
/// Stop()) on std::chrono::steady_clock.
class PhaseTimer {
 public:
  PhaseTimer(Reporter& reporter, std::string name, double ops);
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  PhaseTimer(PhaseTimer&& other) noexcept;
  ~PhaseTimer();

  /// Ends the phase early and reports the wall time in ms.
  double Stop();

 private:
  Reporter* reporter_;
  std::string name_;
  double ops_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

class Reporter {
 public:
  /// `name` becomes BENCH_<name>.json.
  explicit Reporter(std::string name);

  /// Starts a timed phase. `ops` is the work quantum the phase
  /// performs (relaxations, queries, ...); 0 = unspecified, omits the
  /// throughput field.
  PhaseTimer Phase(std::string name, double ops = 0.0);

  /// Records an already-measured phase.
  void RecordPhase(const std::string& name, double wall_ms, double ops);

  /// Records a derived scalar (speedups, ratios) under "derived".
  void Derive(const std::string& metric, double value);

  /// Wall time of a recorded phase, ms; throws if unknown.
  double PhaseMs(const std::string& name) const;

  /// Serializes the report (the schema above).
  std::string ToJson() const;

  /// Writes BENCH_<name>.json into $NP_BENCH_JSON_DIR (default: the
  /// working directory) and prints a per-phase breakdown to stdout.
  void Write() const;

 private:
  struct PhaseRecord {
    std::string name;
    double wall_ms = 0.0;
    double ops = 0.0;
  };

  std::string name_;
  std::vector<PhaseRecord> phases_;
  std::vector<std::pair<std::string, double>> derived_;
};

}  // namespace np::bench
