// Extra ablation: quantifying §2.2's three violated assumptions as a
// function of cluster size.
//
//  * Growth constraint: worst |B(2l)|/|B(l)| ratio — explodes with the
//    number of end-networks per cluster.
//  * Doubling: greedy half-radius cover of a cluster-scale ball —
//    approaches the number of end-networks.
//  * Low dimensionality: Vivaldi embedding error at 5 dimensions —
//    stays high under clustering regardless of cluster size, versus a
//    Euclidean control that embeds cleanly.
#include <cmath>

#include "bench/common.h"
#include "coord/vivaldi.h"
#include "core/condition_analyzer.h"
#include "matrix/generators.h"
#include "util/stats.h"

#include "util/contract.h"

using np::NodeId;
using np::kInvalidNode;

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "ablation_condition",
      "Not a paper figure (quantifies §2.2): growth ratio and doubling "
      "cover scale with end-networks/cluster; embedding error stays "
      "high at any cluster size.");

  const bool quick = np::bench::QuickScale();

  np::util::Table table({"world", "growth_ratio_med", "doubling_cover_max",
                         "vivaldi5d_nn_err_p50"});

  // Low-dimensionality check at the scale that matters for nearest-peer
  // selection: the relative error of each node's *nearest-neighbor*
  // distance. Coordinates place cluster peers on top of each other, so
  // the LAN-scale distances are off by orders of magnitude.
  const auto nn_embed_error = [&](const np::core::LatencySpace& space) {
    std::vector<NodeId> members;
    for (NodeId i = 0; i < space.size(); ++i) {
      members.push_back(i);
    }
    np::coord::VivaldiConfig vconfig;
    vconfig.dimensions = 5;
    vconfig.rounds = quick ? 48 : 96;
    np::util::Rng rng(77);
    const auto embedding =
        np::coord::VivaldiEmbedding::Train(space, members, vconfig, rng);
    std::vector<double> errors;
    np::util::Rng eval_rng(78);
    for (int s = 0; s < 300; ++s) {
      const NodeId node = static_cast<NodeId>(
          eval_rng.Index(static_cast<std::size_t>(space.size())));
      NodeId nearest = kInvalidNode;
      double nearest_d = 1e18;
      for (NodeId other = 0; other < space.size(); ++other) {
        if (other == node) {
          continue;
        }
        const double d = space.Latency(node, other);
        if (d < nearest_d) {
          nearest_d = d;
          nearest = other;
        }
      }
      const double predicted = embedding.PredictedLatency(node, nearest);
      errors.push_back(std::abs(predicted - nearest_d) /
                       std::max(nearest_d, 1e-6));
    }
    return np::util::Percentile(std::move(errors), 50.0);
  };

  for (const int nets : {10, 25, 50, 100}) {
    np::matrix::ClusteredConfig config;
    config.nets_per_cluster = nets;
    config.num_clusters = 4;
    np::util::Rng world_rng(static_cast<std::uint64_t>(nets));
    const auto world = np::matrix::GenerateClustered(config, world_rng);
    const np::core::MatrixSpace space(world.matrix);

    np::util::Rng growth_rng(1);
    const auto growth =
        np::core::AnalyzeGrowth(space, np::core::GrowthConfig{}, growth_rng);
    np::util::Rng doubling_rng(2);
    np::core::DoublingConfig dconfig;
    dconfig.radius_quantile = 0.15;
    const auto doubling =
        np::core::AnalyzeDoubling(space, dconfig, doubling_rng);

    table.AddRow({"clustered_" + std::to_string(nets) + "nets",
                  np::util::FormatDouble(growth.median_ratio, 1),
                  std::to_string(doubling.max_half_cover),
                  np::util::FormatDouble(nn_embed_error(space), 3)});
  }
  {
    np::util::Rng world_rng(99);
    np::matrix::EuclideanConfig config;
    config.dimensions = 3;
    const auto world = np::matrix::GenerateEuclidean(800, config, world_rng);
    const np::core::MatrixSpace space(world.matrix);
    np::util::Rng growth_rng(1);
    const auto growth =
        np::core::AnalyzeGrowth(space, np::core::GrowthConfig{}, growth_rng);
    np::util::Rng doubling_rng(2);
    const auto doubling = np::core::AnalyzeDoubling(
        space, np::core::DoublingConfig{}, doubling_rng);
    table.AddRow({"euclidean_control",
                  np::util::FormatDouble(growth.median_ratio, 1),
                  std::to_string(doubling.max_half_cover),
                  np::util::FormatDouble(nn_embed_error(space), 3)});
  }
  np::bench::PrintTable(table);
  return 0;
}
