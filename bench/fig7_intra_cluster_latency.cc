// Figure 7: distribution of hub-to-peer latencies within the five
// largest pruned clusters.
//
// Paper: cluster sizes 235/139/113/79/73; latencies mostly between
// ~5 ms and ~100 ms, indicating that most cluster members sit in
// *different* end-networks at comparable distances from the hub — the
// raw material of the clustering condition.
#include "bench/common.h"
#include "measure/azureus_study.h"
#include "net/tools.h"
#include "util/stats.h"

#include "util/contract.h"

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "fig7_intra_cluster_latency",
      "Hub-to-peer latency distribution for the 5 largest pruned "
      "clusters; most mass between ~5 and ~100 ms.");

  const bool quick = np::bench::QuickScale();
  np::net::TopologyConfig config = np::net::AzureusStudyConfig();
  if (quick) {
    config.azureus_hosts = 15000;
  }
  np::util::Rng world_rng(1);
  const auto topology = np::net::Topology::Generate(config, world_rng);
  np::net::Tools tools(topology, np::net::NoiseConfig{}, np::util::Rng(2));
  const auto result = np::measure::RunAzureusStudy(
      topology, tools, np::measure::AzureusStudyOptions{});

  np::util::Table table({"cluster_rank", "pruned_size", "min_ms", "p25_ms",
                         "median_ms", "p75_ms", "max_ms",
                         "max/min_ratio"});
  int rank = 1;
  for (const auto* cluster : result.LargestPruned(5)) {
    if (cluster->pruned_latencies.empty()) {
      continue;
    }
    const auto s = np::util::Summary::Of(cluster->pruned_latencies);
    table.AddNumericRow({static_cast<double>(rank++),
                         static_cast<double>(cluster->pruned_peers.size()),
                         s.min, s.p25, s.median, s.p75, s.max,
                         s.max / std::max(s.min, 1e-9)},
                        2);
  }
  np::bench::PrintTable(table);
  np::bench::PrintNote(
      "max/min <= 1.5 by construction of the pruning step; similar "
      "hub latencies across many end-networks = the clustering "
      "condition (paper cluster sizes: 235/139/113/79/73).");
  return 0;
}
