// Ablation F: converged (full-knowledge) Meridian vs gossip-discovered
// rings.
//
// The paper's simulator assumes converged rings. Real deployments
// discover members by gossip; this sweep shows how many exchange
// rounds the discovery needs before query accuracy matches the
// converged build — and that no amount of gossip changes the clustered
// outcome.
#include "bench/common.h"
#include "core/experiment.h"
#include "matrix/generators.h"
#include "meridian/meridian.h"

#include "util/contract.h"

using np::NodeId;

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "ablation_gossip",
      "Not a paper figure. Gossip rounds vs accuracy: Euclidean "
      "accuracy approaches the converged build within ~20 rounds; the "
      "clustered failure is unchanged at any round count.");

  const bool quick = np::bench::QuickScale();
  const int num_queries = quick ? 200 : 1000;
  const NodeId population = quick ? 600 : 1200;

  np::util::Rng euclid_rng(1);
  np::matrix::EuclideanConfig econfig;
  econfig.dimensions = 3;
  const auto euclid =
      np::matrix::GenerateEuclidean(population, econfig, euclid_rng);
  const np::core::MatrixSpace euclid_space(euclid.matrix);

  np::matrix::ClusteredConfig cconfig;
  cconfig.nets_per_cluster = 60;
  cconfig.num_clusters = static_cast<int>(population) / 120;
  np::util::Rng cluster_rng(2);
  const auto clustered = np::matrix::GenerateClustered(cconfig, cluster_rng);

  np::core::ExperimentConfig run;
  run.overlay_size = population - 60;
  run.num_queries = num_queries;

  np::util::Table table({"build", "euclid_p_exact", "euclid_stretch",
                         "clustered_p_exact", "clustered_p_cluster"});

  const auto evaluate = [&](np::meridian::MeridianConfig config,
                            const std::string& label) {
    np::meridian::MeridianOverlay euclid_algo{config};
    np::util::Rng rng_a(11);
    const auto em =
        np::core::RunGenericExperiment(euclid_space, euclid_algo, run, rng_a);
    np::meridian::MeridianOverlay clustered_algo{config};
    np::core::ExperimentConfig crun = run;
    crun.overlay_size = clustered.layout.peer_count() - 60;
    np::util::Rng rng_b(12);
    const auto cm = np::core::RunClusteredExperiment(clustered,
                                                     clustered_algo, crun,
                                                     rng_b);
    table.AddRow({label, np::util::FormatDouble(em.p_exact_closest, 3),
                  np::util::FormatDouble(em.mean_stretch, 3),
                  np::util::FormatDouble(cm.p_exact_closest, 3),
                  np::util::FormatDouble(cm.p_correct_cluster, 3)});
  };

  evaluate(np::meridian::MeridianConfig{}, "full-knowledge");
  for (const int rounds : {2, 6, 12, 24, 48}) {
    np::meridian::MeridianConfig config;
    config.full_knowledge = false;
    config.gossip_rounds = rounds;
    evaluate(config, "gossip-" + std::to_string(rounds));
  }
  np::bench::PrintTable(table);
  return 0;
}
