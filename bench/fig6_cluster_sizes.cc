// Figure 6: distribution of Azureus cluster sizes before and after the
// factor-1.5 latency pruning.
//
// Paper setup (§3.2): 156,658 Azureus IPs; peers that answered TCP
// pings or traceroutes AND showed the same last valid router from all
// seven vantage points (5904 in the paper) are grouped by that
// upstream router; each cluster is pruned to the largest subset whose
// hub-to-peer latencies lie within a factor of 1.5.
//
// Expected shape: a heavy-tailed size distribution with clusters up to
// ~200+ peers; ~16% of clustered peers in pruned clusters of >= 25.
#include "bench/common.h"
#include "measure/azureus_study.h"
#include "net/tools.h"

#include "util/contract.h"

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "fig6_cluster_sizes",
      "Cumulative count of peers vs cluster size (unpruned and "
      "pruned); ~16% of peers in pruned clusters of size >= 25; "
      "largest clusters have hundreds of members.");

  const bool quick = np::bench::QuickScale();
  np::net::TopologyConfig config = np::net::AzureusStudyConfig();
  if (quick) {
    config.azureus_hosts = 15000;
  }
  np::util::Rng world_rng(1);
  const auto topology = np::net::Topology::Generate(config, world_rng);
  np::net::Tools tools(topology, np::net::NoiseConfig{}, np::util::Rng(2));
  const auto result = np::measure::RunAzureusStudy(
      topology, tools, np::measure::AzureusStudyOptions{});

  std::cout << "total_ips: " << result.total_ips << "\n";
  std::cout << "responsive: " << result.responsive << "\n";
  std::cout << "unique_upstream(clustered): " << result.unique_upstream
            << " (paper: 5904 of 156k)\n";

  // Cumulative count of peers in clusters of size <= s.
  const auto count_at_most = [](const std::vector<int>& sizes, int s) {
    int total = 0;
    for (int size : sizes) {
      if (size <= s) {
        total += size;
      }
    }
    return total;
  };
  const auto unpruned = result.UnprunedSizes();
  const auto pruned = result.PrunedSizes();
  np::util::Table table({"cluster_size<=", "cum_peers_unpruned",
                         "cum_peers_pruned"});
  for (const int s : {1, 2, 5, 10, 25, 50, 100, 200, 1000}) {
    table.AddNumericRow({static_cast<double>(s),
                         static_cast<double>(count_at_most(unpruned, s)),
                         static_cast<double>(count_at_most(pruned, s))},
                        0);
  }
  np::bench::PrintTable(table);

  std::cout << "largest_unpruned: " << (unpruned.empty() ? 0 : unpruned[0])
            << ", largest_pruned: " << (pruned.empty() ? 0 : pruned[0])
            << "\n";
  std::cout << "frac_peers_in_pruned_clusters>=25: "
            << np::util::FormatDouble(
                   result.FractionInPrunedClustersAtLeast(25), 3)
            << " (paper: ~0.16)\n";
  return 0;
}
