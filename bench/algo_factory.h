// Shared name -> algorithm factory for the bench binaries, so the
// churn-cost and scale-sweep benches (and any future one) construct
// identically-configured algorithms from the same table — a config
// tweak applied to one bench cannot silently diverge from another
// under the same algorithm name. tools/np_run.cc keeps its own
// factory: its hybrid-* entries are world-dependent and its names are
// schema-validated.
#pragma once

#include <memory>
#include <string>

#include "algos/beaconing.h"
#include "algos/coord_nearest.h"
#include "algos/karger_ruhl.h"
#include "algos/tapestry.h"
#include "algos/tiers.h"
#include "core/nearest_algorithm.h"
#include "meridian/meridian.h"
#include "util/error.h"

namespace np::bench {

inline std::unique_ptr<core::NearestPeerAlgorithm> MakeBenchAlgorithm(
    const std::string& name) {
  if (name == "oracle") {
    return std::make_unique<core::OracleNearest>();
  }
  if (name == "random") {
    return std::make_unique<core::RandomNearest>();
  }
  if (name == "meridian") {
    return std::make_unique<meridian::MeridianOverlay>(
        meridian::MeridianConfig{});
  }
  if (name == "karger-ruhl") {
    return std::make_unique<algos::KargerRuhlNearest>(
        algos::KargerRuhlConfig{});
  }
  if (name == "tapestry") {
    return std::make_unique<algos::TapestryNearest>(algos::TapestryConfig{});
  }
  if (name == "beaconing") {
    return std::make_unique<algos::BeaconingNearest>(
        algos::BeaconingConfig{});
  }
  if (name == "tiers") {
    return std::make_unique<algos::TiersNearest>(algos::TiersConfig{});
  }
  if (name == "tiers-rebuild") {
    // Incremental repair disabled: the engine rebuilds per epoch and
    // bills it — the pre-repair cost model, kept for head-to-heads.
    algos::TiersConfig rebuild;
    rebuild.incremental = false;
    return std::make_unique<algos::TiersNearest>(rebuild);
  }
  if (name == "coord-vivaldi") {
    return std::make_unique<algos::CoordNearest>(algos::CoordConfig{});
  }
  if (name == "coord-pic") {
    algos::CoordConfig config;
    config.scheme = algos::CoordScheme::kPic;
    return std::make_unique<algos::CoordNearest>(config);
  }
  if (name == "coord-landmark") {
    algos::CoordConfig config;
    config.scheme = algos::CoordScheme::kLandmark;
    return std::make_unique<algos::CoordNearest>(config);
  }
  throw util::Error("unknown bench algorithm: " + name);
}

}  // namespace np::bench
