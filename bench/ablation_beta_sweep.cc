// Ablation A: Meridian's beta gate — accuracy vs probe cost.
//
// The paper fixes beta = 0.5 ("controls the trade-off between the
// number of messages sent ... and the accuracy of the result"). This
// sweep quantifies that trade-off on the clustered world (125
// end-networks/cluster, delta=0.2) and on a Euclidean control space.
// Expected: higher beta -> more probes and better accuracy on the
// control space; under clustering, no beta rescues exact-closest
// accuracy — the condition is not a tuning problem.
#include "bench/common.h"
#include "core/experiment.h"
#include "matrix/generators.h"
#include "meridian/meridian.h"

#include "util/contract.h"

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "ablation_beta_sweep",
      "Not a paper figure. Beta sweep: probe cost rises with beta; "
      "clustered exact-closest accuracy stays poor at every beta while "
      "Euclidean accuracy is high throughout.");

  const bool quick = np::bench::QuickScale();
  const int num_queries = quick ? 300 : 2000;

  // Clustered world (paper Fig 9 setup at delta = 0.2).
  np::matrix::ClusteredConfig cconfig;
  cconfig.nets_per_cluster = 125;
  cconfig.num_clusters = 10;
  np::util::Rng cluster_rng(11);
  const auto clustered = np::matrix::GenerateClustered(cconfig, cluster_rng);

  // Euclidean control of comparable size.
  np::util::Rng euclid_rng(12);
  np::matrix::EuclideanConfig econfig;
  econfig.dimensions = 3;
  const auto euclid = np::matrix::GenerateEuclidean(
      clustered.layout.peer_count(), econfig, euclid_rng);
  const np::core::MatrixSpace euclid_space(euclid.matrix);

  np::util::Table table({"beta", "clustered_p_exact", "clustered_probes",
                         "clustered_hops", "euclid_p_exact",
                         "euclid_stretch", "euclid_probes"});
  for (const double beta : {0.25, 0.4, 0.5, 0.65, 0.8, 0.9}) {
    np::meridian::MeridianConfig mconfig;
    mconfig.beta = beta;

    np::meridian::MeridianOverlay clustered_algo{mconfig};
    np::core::ExperimentConfig run;
    run.overlay_size = clustered.layout.peer_count() - 100;
    run.num_queries = num_queries;
    np::util::Rng rng_a(21);
    const auto cm = np::core::RunClusteredExperiment(clustered, clustered_algo,
                                                     run, rng_a);

    np::meridian::MeridianOverlay euclid_algo{mconfig};
    np::util::Rng rng_b(22);
    const auto em =
        np::core::RunGenericExperiment(euclid_space, euclid_algo, run, rng_b);

    table.AddNumericRow({beta, cm.p_exact_closest, cm.mean_probes,
                         cm.mean_hops, em.p_exact_closest, em.mean_stretch,
                         em.mean_probes},
                        3);
  }
  np::bench::PrintTable(table);
  return 0;
}
