// fig_scale_sweep: accuracy, traffic, and construction cost as a
// function of overlay size, n ∈ {10^3, 10^4, 10^5}, on the implicit
// EmbeddedSpace backend (O(n * d) memory — the dense matrix this sweep
// replaces would need ~80 GB at n = 10^5).
//
// Not a paper figure: the paper's simulations stop at ~2500 peers.
// This is the "millions of users" axis the ROADMAP opens. Each sweep
// point measures three regimes per algorithm:
//
//  * grown — a seed overlay grows to ~n/2 members through a join-only
//    churn schedule (maintenance billed per event exactly as a
//    deployment would pay it), then closest-peer queries run against
//    the live membership.
//  * batch — the same-size overlay is built in one shot:
//    the serial Build is timed as the reference, ParallelBuild is
//    timed on every hardware thread (bit-identical state by the
//    determinism contract), queries measure the batch overlay, and a
//    per-leave micro-bench removes a sample of members through a
//    metered space — the honest per-leave repair bill that O(overlay)
//    purge scans used to drown out.
//  * churn — a leave-heavy session schedule (every joiner departs
//    after a ~200 s mean session) drives tens of thousands of leaves
//    at the top sweep point, which indexed membership makes tractable.
//
// Emits BENCH_scale_sweep.json. Derived metrics starting with "n" are
// deterministic (fixed seeds, thread-invariant engine and builds) and
// CI-gated against a committed baseline via bench_compare.py
// --derived; the speedup_parallel_build* metrics are wall-clock
// ratios (machine-dependent, recorded by the bench-multicore job, not
// gated). The quick scale (CI smoke) sweeps n ∈ {1000, 2000, 4000}.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench/algo_factory.h"
#include "bench/common.h"
#include "bench/reporter.h"
#include "core/scenario.h"
#include "core/space_factory.h"
#include "matrix/embedded_space.h"
#include "util/error.h"
#include "util/parallel.h"

#include "util/contract.h"

namespace {

using np::LatencyMs;
using np::NodeId;
using np::bench::MakeBenchAlgorithm;
using np::core::ChurnSchedule;
using np::core::ChurnScheduleConfig;
using np::core::MeteredSpace;
using np::core::NearestPeerAlgorithm;
using np::core::ScenarioConfig;
using np::core::ScenarioReport;
using np::core::SpaceFactory;
using np::core::TrueClosestMember;

/// Full Build() at n = 10^5 is quadratic for the structured overlays,
/// so the grown/churn regimes start from a small seed overlay and
/// apply incremental events — the honest deployment path: real
/// overlays are grown, not batch-built. The batch regime below is the
/// counterpart that IS batch-built.
NodeId SeedOverlay(NodeId n) { return std::max<NodeId>(64, n / 20); }

ChurnSchedule GrowthSchedule(NodeId n) {
  ChurnScheduleConfig config;
  config.duration_s = 600.0;
  // Pure growth: every event is a metered join so the maintenance
  // curve isolates what *scale* costs; leave repair is the churn
  // regime's subject.
  config.join_fraction = 1.0;
  const double target_events =
      static_cast<double>(n) / 2.0 - static_cast<double>(SeedOverlay(n));
  config.events_per_s = std::max(target_events, 16.0) / config.duration_s;
  config.seed = 29;
  return ChurnSchedule::Poisson(config);
}

ChurnSchedule LeaveHeavySchedule(NodeId n) {
  // Session mode: every arrival joins and leaves again after an
  // exponential ~200 s session inside the 600 s horizon, so leaves
  // arrive at nearly the join rate — the regime whose O(overlay)
  // purges used to be intractable at n = 10^5.
  ChurnScheduleConfig config;
  config.duration_s = 600.0;
  config.mean_session_s = 200.0;
  config.events_per_s =
      std::max(static_cast<double>(n) / 2.0, 16.0) / config.duration_s;
  config.seed = 41;
  return ChurnSchedule::Poisson(config);
}

/// Deterministic batch membership: a fixed-seed shuffle of the space,
/// first half in the overlay, remainder the query-target pool.
void SplitBatchMembership(NodeId n, std::vector<NodeId>* members,
                          std::vector<NodeId>* targets) {
  std::vector<NodeId> ids(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    ids[static_cast<std::size_t>(v)] = v;
  }
  np::util::Rng rng(13);
  rng.Shuffle(ids);
  const std::size_t m = static_cast<std::size_t>(n) / 2;
  members->assign(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(m));
  targets->assign(ids.begin() + static_cast<std::ptrdiff_t>(m), ids.end());
}

struct BatchQueryStats {
  double p_exact = 0.0;
  double msgs_per_query = 0.0;
};

/// Serial fixed-seed query loop over a built overlay (the scenario
/// engine is not reused here to avoid paying a third full build).
BatchQueryStats MeasureQueries(const np::core::LatencySpace& space,
                               NearestPeerAlgorithm& algo,
                               const std::vector<NodeId>& targets,
                               int num_queries) {
  BatchQueryStats stats;
  np::util::Rng rng(np::util::Mix64(59));
  std::int64_t exact = 0;
  std::uint64_t probes = 0;
  for (int q = 0; q < num_queries; ++q) {
    const NodeId target = targets[rng.Index(targets.size())];
    const NodeId truth = TrueClosestMember(space, algo.members(), target);
    const MeteredSpace metered(space);
    const auto result = algo.FindNearest(target, metered, rng);
    probes += metered.probes();
    if (space.Latency(result.found, target) <=
        space.Latency(truth, target) + 1e-9) {
      ++exact;
    }
  }
  stats.p_exact =
      static_cast<double>(exact) / static_cast<double>(num_queries);
  stats.msgs_per_query =
      static_cast<double>(probes) / static_cast<double>(num_queries);
  return stats;
}

}  // namespace

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "fig_scale_sweep",
      "Not a paper figure. P(exact closest), messages per query, "
      "maintenance per churn event, batch-vs-grown construction cost and "
      "per-leave repair bills vs overlay size on the implicit "
      "embedded-coordinate backend (no dense matrix).");
  const bool quick = np::bench::QuickScale();

  const std::vector<NodeId> sweep =
      quick ? std::vector<NodeId>{1000, 2000, 4000}
            : std::vector<NodeId>{1000, 10000, 100000};
  // Meridian's per-join handshake (contacts + their rings, plus ring
  // re-selection) and Tapestry's measure-everyone join are an order of
  // magnitude heavier than Karger-Ruhl's bounded sampling; cap them
  // below the top sweep point.
  const NodeId heavy_join_cap = 10000;
  const int queries = quick ? 60 : 150;

  np::bench::Reporter reporter("scale_sweep");
  np::util::Table grown_table({"n", "algorithm", "members", "p_exact",
                               "p95_excess_ms", "msgs/query", "maint/event"});
  np::util::Table batch_table({"n", "algorithm", "members", "p_exact",
                               "msgs/query", "build_serial_ms",
                               "build_par_ms", "speedup", "maint/leave"});
  np::util::Table churn_table({"n", "algorithm", "members", "joins",
                               "leaves", "p_exact", "maint/event"});
  double top_serial_ms = 0.0;
  double top_parallel_ms = 0.0;
  NodeId top_n = 0;

  for (const NodeId n : sweep) {
    np::matrix::EmbeddedSpaceConfig wconfig;
    wconfig.num_nodes = n;
    wconfig.dimensions = 3;
    wconfig.side_ms = 100.0;
    wconfig.distortion = 0.1;
    wconfig.seed = 17;
    const SpaceFactory world = SpaceFactory::MakeEmbedded(wconfig);
    const ChurnSchedule growth = GrowthSchedule(n);
    const ChurnSchedule leave_heavy = LeaveHeavySchedule(n);

    ScenarioConfig sconfig;
    sconfig.initial_overlay = SeedOverlay(n);
    sconfig.epochs = 2;
    sconfig.queries_per_epoch = queries;
    sconfig.num_threads = 0;
    sconfig.seed = 11;

    std::vector<std::string> algorithms = {"oracle", "random", "karger-ruhl",
                                           "tiers", "beaconing"};
    if (n <= heavy_join_cap) {
      algorithms.push_back("meridian");
      algorithms.push_back("tapestry");
    }

    std::vector<NodeId> batch_members;
    std::vector<NodeId> batch_targets;
    SplitBatchMembership(n, &batch_members, &batch_targets);

    for (const std::string& name : algorithms) {
      const std::string key = "n" + std::to_string(n) + "_" + name;

      // --- grown: incremental joins from a seed overlay ------------------
      {
        const auto algo = MakeBenchAlgorithm(name);
        ScenarioReport report;
        {
          auto phase = reporter.Phase(
              "scenario_n" + std::to_string(n) + "_" + name,
              static_cast<double>(sconfig.epochs * sconfig.queries_per_epoch));
          report = RunScenario(world.space(), world.layout(), *algo, growth,
                               sconfig);
        }
        const np::core::EpochReport& last = report.epochs.back();
        reporter.Derive(key + "_p_exact", last.p_exact_closest);
        reporter.Derive(key + "_msgs_per_query", report.messages_per_query);
        reporter.Derive(key + "_maint_per_event",
                        report.maintenance_per_event);
        reporter.Derive(key + "_excess_p95_ms", last.excess_latency_p95_ms);
        grown_table.AddRow(
            {std::to_string(n), name, std::to_string(report.final_members),
             np::util::FormatDouble(last.p_exact_closest, 3),
             np::util::FormatDouble(last.excess_latency_p95_ms, 2),
             np::util::FormatDouble(report.messages_per_query, 1),
             np::util::FormatDouble(report.maintenance_per_event, 1)});
      }

      // --- churn: leave-heavy session schedule ---------------------------
      {
        const auto algo = MakeBenchAlgorithm(name);
        ScenarioReport report;
        {
          auto phase = reporter.Phase(
              "churn_n" + std::to_string(n) + "_" + name,
              static_cast<double>(leave_heavy.size()));
          report = RunScenario(world.space(), world.layout(), *algo,
                               leave_heavy, sconfig);
        }
        const np::core::EpochReport& last = report.epochs.back();
        std::int64_t joins = 0;
        std::int64_t leaves = 0;
        for (const auto& er : report.epochs) {
          joins += er.joins;
          leaves += er.leaves;
        }
        reporter.Derive(key + "_churn_p_exact", last.p_exact_closest);
        reporter.Derive(key + "_churn_maint_per_event",
                        report.maintenance_per_event);
        churn_table.AddRow(
            {std::to_string(n), name, std::to_string(report.final_members),
             std::to_string(joins), std::to_string(leaves),
             np::util::FormatDouble(last.p_exact_closest, 3),
             np::util::FormatDouble(report.maintenance_per_event, 1)});
      }

      // --- batch: one-shot construction + per-leave micro-bench ----------
      const auto batch_algo = MakeBenchAlgorithm(name);
      if (!batch_algo->SupportsParallelBuild()) {
        continue;  // trivial builds (oracle/random) have nothing to time
      }
      // Both builds run through the same metered view so the timing
      // comparison is apples to apples (the atomic probe counter costs
      // the same on both sides), and the probe counts double as a
      // determinism check: serial and parallel must bill identically.
      const MeteredSpace batch_metered(world.space());
      double serial_ms = 0.0;
      {
        const auto serial_algo = MakeBenchAlgorithm(name);
        np::util::Rng rng(np::util::Mix64(43));
        auto phase = reporter.Phase(
            "build_serial_n" + std::to_string(n) + "_" + name,
            static_cast<double>(batch_members.size()));
        serial_algo->Build(batch_metered, batch_members, rng);
        serial_ms = phase.Stop();
      }
      const std::uint64_t build_messages = batch_metered.probes();
      double parallel_ms = 0.0;
      {
        np::util::Rng rng(np::util::Mix64(43));
        auto phase = reporter.Phase(
            "build_parallel_n" + std::to_string(n) + "_" + name,
            static_cast<double>(batch_members.size()));
        batch_algo->ParallelBuild(batch_metered, batch_members, rng,
                                  /*num_threads=*/0);
        parallel_ms = phase.Stop();
      }
      NP_ENSURE(batch_metered.probes() == 2 * build_messages,
                "ParallelBuild billed differently than the serial Build");
      reporter.Derive(key + "_batch_build_messages",
                      static_cast<double>(build_messages));
      reporter.Derive("speedup_parallel_build_n" + std::to_string(n) + "_" +
                          name,
                      parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0);
      if (n == sweep.back()) {
        top_serial_ms += serial_ms;
        top_parallel_ms += parallel_ms;
        top_n = n;
      }

      const BatchQueryStats qstats =
          MeasureQueries(world.space(), *batch_algo, batch_targets, queries);
      reporter.Derive(key + "_batch_p_exact", qstats.p_exact);
      reporter.Derive(key + "_batch_msgs_per_query", qstats.msgs_per_query);

      // Per-leave repair bill: remove a deterministic sample of the
      // batch overlay through the metered space. With indexed
      // membership the unbilled bookkeeping is O(1)-amortized, so
      // this isolates the scheme's own repair probes (and the wall
      // clock stays flat in n — the acceptance check for "no
      // O(overlay) scan in RemoveMember").
      const std::size_t num_leaves =
          std::min<std::size_t>(quick ? 100 : 200, batch_members.size() / 4);
      std::vector<NodeId> victims;
      const std::size_t stride =
          std::max<std::size_t>(1, batch_members.size() / num_leaves);
      for (std::size_t i = 0;
           i < batch_members.size() && victims.size() < num_leaves;
           i += stride) {
        victims.push_back(batch_members[i]);
      }
      const std::uint64_t before_leaves = batch_metered.probes();
      {
        auto phase =
            reporter.Phase("leaves_n" + std::to_string(n) + "_" + name,
                           static_cast<double>(victims.size()));
        for (const NodeId victim : victims) {
          batch_algo->RemoveMember(victim);
        }
      }
      const double maint_per_leave =
          static_cast<double>(batch_metered.probes() - before_leaves) /
          static_cast<double>(victims.size());
      reporter.Derive(key + "_maint_per_leave", maint_per_leave);
      batch_table.AddRow(
          {std::to_string(n), name, std::to_string(batch_members.size()),
           np::util::FormatDouble(qstats.p_exact, 3),
           np::util::FormatDouble(qstats.msgs_per_query, 1),
           np::util::FormatDouble(serial_ms, 1),
           np::util::FormatDouble(parallel_ms, 1),
           np::util::FormatDouble(
               parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0, 2),
           np::util::FormatDouble(maint_per_leave, 1)});
    }
  }

  // Headline for the bench-multicore job: aggregate build speedup at
  // the top sweep point (sum of serial walls over sum of parallel).
  if (top_parallel_ms > 0.0) {
    reporter.Derive("speedup_parallel_build",
                    top_serial_ms / top_parallel_ms);
  }
  reporter.Derive("parallel_build_threads",
                  static_cast<double>(np::util::ResolveThreadCount(0)));

  std::cout << "grown overlays (seed + incremental joins):\n";
  np::bench::PrintTable(grown_table);
  std::cout << "batch-built overlays (serial vs parallel one-shot build, "
               "per-leave repair):\n";
  np::bench::PrintTable(batch_table);
  std::cout << "leave-heavy session churn (~n/2 joins, sessions ~200 s):\n";
  np::bench::PrintTable(churn_table);
  np::bench::PrintNote(
      "identical world + schedules per n across algorithms. grown and "
      "batch overlays hold the same member count (~n/2); batch rows time "
      "the serial reference Build against ParallelBuild on all hardware "
      "threads (bit-identical overlay state by the determinism contract: "
      "top-n speedup = speedup_parallel_build, ~1.0 on a 1-core box). "
      "maint/leave is the metered probe bill per departure; oracle/random "
      "are the accuracy ceiling/floor and build/leave for free. n = " +
      std::to_string(top_n) +
      " leave-heavy churn was intractable before indexed membership "
      "(O(overlay) purge scans per leave).");
  reporter.Write();
  return 0;
}
