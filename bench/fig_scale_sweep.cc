// fig_scale_sweep: accuracy and traffic as a function of overlay
// size, n ∈ {10^3, 10^4, 10^5}, on the implicit EmbeddedSpace backend
// (O(n * d) memory — the dense matrix this sweep replaces would need
// ~80 GB at n = 10^5).
//
// Not a paper figure: the paper's simulations stop at ~2500 peers.
// This is the "millions of users" axis the ROADMAP opens — how the
// probe-count lower bound and the achievable accuracy move as the
// overlay grows. Each sweep point builds a seed overlay, grows it to
// ~n/2 members through a join-heavy churn schedule (so maintenance is
// billed per event exactly as a deployment would pay it), then
// measures closest-peer queries against the live membership.
//
// Emits BENCH_scale_sweep.json: one phase per (n, algorithm) scenario
// run, and derived metrics
//   n<k>_<algo>_p_exact, n<k>_<algo>_msgs_per_query,
//   n<k>_<algo>_maint_per_event, n<k>_<algo>_excess_p95_ms
// The quick scale (CI smoke) sweeps n ∈ {1000, 2000, 4000}; the
// derived values are deterministic (fixed seeds, thread-invariant
// engine), which is what lets CI gate them against a committed
// baseline.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench/algo_factory.h"
#include "bench/common.h"
#include "bench/reporter.h"
#include "core/scenario.h"
#include "core/space_factory.h"
#include "matrix/embedded_space.h"

namespace {

using np::NodeId;
using np::bench::MakeBenchAlgorithm;
using np::core::ChurnSchedule;
using np::core::ChurnScheduleConfig;
using np::core::ScenarioConfig;
using np::core::ScenarioReport;
using np::core::SpaceFactory;

/// Full Build() at n = 10^5 is quadratic for the structured overlays,
/// so every sweep point starts from a small seed overlay and grows by
/// incremental joins — which is also the honest deployment path: real
/// overlays are grown, not batch-built.
NodeId SeedOverlay(NodeId n) { return std::max<NodeId>(64, n / 20); }

ChurnSchedule GrowthSchedule(NodeId n) {
  ChurnScheduleConfig config;
  config.duration_s = 600.0;
  // Pure growth: leave handling (the O(overlay) purge every scheme
  // pays) is fig_churn_cost's subject; here every event is a metered
  // join so the maintenance curve isolates what *scale* costs.
  config.join_fraction = 1.0;
  const double target_events =
      static_cast<double>(n) / 2.0 - static_cast<double>(SeedOverlay(n));
  config.events_per_s = std::max(target_events, 16.0) / config.duration_s;
  config.seed = 29;
  return ChurnSchedule::Poisson(config);
}

}  // namespace

int main() {
  np::bench::PrintHeader(
      "fig_scale_sweep",
      "Not a paper figure. P(exact closest), messages per query and "
      "maintenance per churn event vs overlay size on the implicit "
      "embedded-coordinate backend (no dense matrix).");
  const bool quick = np::bench::QuickScale();

  const std::vector<NodeId> sweep =
      quick ? std::vector<NodeId>{1000, 2000, 4000}
            : std::vector<NodeId>{1000, 10000, 100000};
  // Meridian's per-join handshake (contacts + their rings, plus ring
  // re-selection) is an order of magnitude heavier than Karger-Ruhl's
  // bounded sampling; cap it below the top sweep point.
  const NodeId meridian_cap = 10000;

  np::bench::Reporter reporter("scale_sweep");
  np::util::Table table({"n", "algorithm", "members", "p_exact",
                         "p95_excess_ms", "msgs/query", "maint/event"});
  for (const NodeId n : sweep) {
    np::matrix::EmbeddedSpaceConfig wconfig;
    wconfig.num_nodes = n;
    wconfig.dimensions = 3;
    wconfig.side_ms = 100.0;
    wconfig.distortion = 0.1;
    wconfig.seed = 17;
    const SpaceFactory world = SpaceFactory::MakeEmbedded(wconfig);
    const ChurnSchedule schedule = GrowthSchedule(n);

    ScenarioConfig sconfig;
    sconfig.initial_overlay = SeedOverlay(n);
    sconfig.epochs = 2;
    sconfig.queries_per_epoch = quick ? 60 : 150;
    sconfig.num_threads = 0;
    sconfig.seed = 11;

    std::vector<std::string> algorithms = {"oracle", "random",
                                           "karger-ruhl"};
    if (n <= meridian_cap) {
      algorithms.push_back("meridian");
    }
    for (const std::string& name : algorithms) {
      const auto algo = MakeBenchAlgorithm(name);
      ScenarioReport report;
      {
        auto phase = reporter.Phase(
            "scenario_n" + std::to_string(n) + "_" + name,
            static_cast<double>(sconfig.epochs * sconfig.queries_per_epoch));
        report = RunScenario(world.space(), world.layout(), *algo, schedule,
                             sconfig);
      }
      const np::core::EpochReport& last = report.epochs.back();
      const std::string key = "n" + std::to_string(n) + "_" + name;
      reporter.Derive(key + "_p_exact", last.p_exact_closest);
      reporter.Derive(key + "_msgs_per_query", report.messages_per_query);
      reporter.Derive(key + "_maint_per_event", report.maintenance_per_event);
      reporter.Derive(key + "_excess_p95_ms", last.excess_latency_p95_ms);
      table.AddRow({std::to_string(n), name,
                    std::to_string(report.final_members),
                    np::util::FormatDouble(last.p_exact_closest, 3),
                    np::util::FormatDouble(last.excess_latency_p95_ms, 2),
                    np::util::FormatDouble(report.messages_per_query, 1),
                    np::util::FormatDouble(report.maintenance_per_event, 1)});
    }
  }
  np::bench::PrintTable(table);
  np::bench::PrintNote(
      "identical world + growth schedule per n across algorithms; the "
      "overlay is grown to ~n/2 members by metered joins before "
      "measurement. oracle is the accuracy ceiling (and pays O(members) "
      "probes per query); random is the floor.");
  reporter.Write();
  return 0;
}
