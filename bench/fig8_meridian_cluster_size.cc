// Figure 8: Meridian success rates vs the number of end-networks per
// cluster.
//
// Paper setup (§4): ~2500 peers, 2 peers per end-network, cluster-hub
// latencies sampled from a King-like dataset (median ~65 ms), mean
// hub-to-net latency U(4,6) ms, delta = 0.2, beta = 0.5, 16 nodes per
// ring, ~2400-peer overlay, 100 held-out targets, 5000 queries, three
// independent latency datasets (median/min/max reported).
//
// Expected shape: P(exact closest) rises to a peak at ~25 end-networks
// per cluster and falls off beyond it (the clustering-condition phase
// transition); P(correct cluster) rises monotonically.
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/reporter.h"
#include "core/experiment.h"
#include "matrix/generators.h"
#include "meridian/meridian.h"
#include "util/stats.h"

#include "util/contract.h"

namespace {

constexpr int kTotalNets = 1250;  // 2500 peers / 2 per net

struct Row {
  int nets_per_cluster = 0;
  np::util::RunSpread exact;
  np::util::RunSpread cluster;
  double mean_probes = 0.0;
};

Row RunPoint(int nets_per_cluster, int num_queries, int num_seeds) {
  std::vector<double> exact_runs;
  std::vector<double> cluster_runs;
  double probes = 0.0;
  for (int seed = 1; seed <= num_seeds; ++seed) {
    np::matrix::ClusteredConfig config;
    config.nets_per_cluster = nets_per_cluster;
    config.num_clusters = kTotalNets / nets_per_cluster;
    config.peers_per_net = 2;
    config.delta = 0.2;
    np::util::Rng world_rng(static_cast<std::uint64_t>(seed) * 1000 +
                            static_cast<std::uint64_t>(nets_per_cluster));
    const auto world = np::matrix::GenerateClustered(config, world_rng);

    np::meridian::MeridianConfig mconfig;  // beta=0.5, ring 16: paper values
    np::meridian::MeridianOverlay meridian(mconfig);

    np::core::ExperimentConfig econfig;
    econfig.overlay_size = world.layout.peer_count() - 100;
    econfig.num_queries = num_queries;
    np::util::Rng run_rng(static_cast<std::uint64_t>(seed) * 77 + 5);
    const auto metrics =
        np::core::RunClusteredExperiment(world, meridian, econfig, run_rng);
    exact_runs.push_back(metrics.p_exact_closest);
    cluster_runs.push_back(metrics.p_correct_cluster);
    probes += metrics.mean_probes;
  }
  Row row;
  row.nets_per_cluster = nets_per_cluster;
  row.exact = np::util::RunSpread::Of(exact_runs);
  row.cluster = np::util::RunSpread::Of(cluster_runs);
  row.mean_probes = probes / num_seeds;
  return row;
}

}  // namespace

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "fig8_meridian_cluster_size",
      "P(correct closest peer) peaks near 25 end-networks/cluster then "
      "falls (0.55 -> ~0.1 at 250); P(correct cluster) rises "
      "monotonically toward 1.0. ~2.4K overlay, beta=0.5, delta=0.2, 2 "
      "peers/end-network, 5000 queries, 3 runs (median [min, max]).");

  const bool quick = np::bench::QuickScale();
  const int num_queries = quick ? 500 : 5000;
  const int num_seeds = 3;

  np::bench::Reporter reporter("fig8_meridian_cluster_size");
  np::util::Table table(
      {"nets_per_cluster", "clusters", "p_exact_med", "p_exact_min",
       "p_exact_max", "p_cluster_med", "p_cluster_min", "p_cluster_max",
       "mean_probes"});
  for (const int nets : {5, 25, 50, 125, 250}) {
    auto phase = reporter.Phase("sweep_nets_" + std::to_string(nets),
                                static_cast<double>(num_queries) * num_seeds);
    const Row row = RunPoint(nets, num_queries, num_seeds);
    phase.Stop();
    reporter.Derive("p_exact_med_nets_" + std::to_string(nets),
                    row.exact.median);
    table.AddNumericRow(
        {static_cast<double>(nets),
         static_cast<double>(kTotalNets / nets), row.exact.median,
         row.exact.min, row.exact.max, row.cluster.median, row.cluster.min,
         row.cluster.max, row.mean_probes},
        3);
  }
  np::bench::PrintTable(table);
  reporter.Write();
  np::bench::PrintNote(
      "exact-closest = returned peer ties the true closest overlay "
      "member; correct-cluster = returned peer shares the target's "
      "cluster.");
  return 0;
}
