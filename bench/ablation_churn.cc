// Ablation H: Meridian accuracy under churn — incremental ring
// maintenance vs a from-scratch rebuild, on the control space and the
// clustered world.
//
// The paper's simulator evaluates a static converged overlay; deployed
// P2P systems never have one. This quantifies how much accuracy the
// join/leave protocol costs — and confirms the clustering-condition
// failure is not an artifact of staleness.
#include "bench/common.h"
#include "core/experiment.h"
#include "matrix/generators.h"
#include "meridian/meridian.h"

#include "util/contract.h"

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "ablation_churn",
      "Not a paper figure. Accuracy per churn wave stays close to the "
      "fresh-rebuild bound on the control space; clustered accuracy is "
      "equally poor maintained or rebuilt.");

  const bool quick = np::bench::QuickScale();
  np::core::ChurnConfig config;
  config.initial_overlay = quick ? 300 : 700;
  config.events = quick ? 160 : 480;
  config.waves = 4;
  config.queries_per_wave = quick ? 100 : 400;

  np::util::Table table({"world", "wave1", "wave2", "wave3", "wave4",
                         "rebuilt", "final_members"});

  const auto run = [&](const np::core::LatencySpace& space,
                       const std::string& label, std::uint64_t seed) {
    np::meridian::MeridianOverlay maintained{np::meridian::MeridianConfig{}};
    np::meridian::MeridianOverlay rebuilt{np::meridian::MeridianConfig{}};
    np::util::Rng rng(seed);
    const auto metrics = np::core::RunChurnExperiment(
        space, maintained, rebuilt, config, rng);
    std::vector<std::string> row{label};
    for (double p : metrics.p_exact_per_wave) {
      row.push_back(np::util::FormatDouble(p, 3));
    }
    row.push_back(np::util::FormatDouble(metrics.p_exact_rebuilt, 3));
    row.push_back(std::to_string(metrics.final_members));
    table.AddRow(std::move(row));
  };

  np::util::Rng euclid_rng(1);
  np::matrix::EuclideanConfig econfig;
  econfig.dimensions = 3;
  const auto euclid = np::matrix::GenerateEuclidean(
      quick ? 500 : 1000, econfig, euclid_rng);
  const np::core::MatrixSpace euclid_space(euclid.matrix);
  run(euclid_space, "euclidean", 11);

  np::matrix::ClusteredConfig cconfig;
  cconfig.nets_per_cluster = 50;
  cconfig.num_clusters = quick ? 5 : 10;
  np::util::Rng cluster_rng(2);
  const auto clustered = np::matrix::GenerateClustered(cconfig, cluster_rng);
  const np::core::MatrixSpace clustered_space(clustered.matrix);
  run(clustered_space, "clustered", 12);

  np::bench::PrintTable(table);
  np::bench::PrintNote(
      "waves = accuracy after each quarter of the churn events under "
      "incremental maintenance; rebuilt = fresh overlay on the final "
      "membership.");
  return 0;
}
