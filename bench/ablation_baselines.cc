// Ablation D: every nearest-peer scheme the paper discusses (§2.3, §6),
// on the clustered world and on a Euclidean control.
//
// The paper's argument is universal: Meridian, Karger-Ruhl-style
// sampling, identifier-based (Tapestry-style) sampling, Tiers'
// hierarchy, Beaconing, and coordinate walks (PIC) all degenerate under
// the clustering condition, while all of them work acceptably on a
// growth-constrained space. Probes carry realistic measurement noise
// (0.5 ms floor + 2%) so exact-arithmetic triangulation cannot cheat.
#include <functional>
#include <memory>

#include "algos/beaconing.h"
#include "algos/karger_ruhl.h"
#include "algos/tapestry.h"
#include "algos/tiers.h"
#include "bench/common.h"
#include "coord/pic.h"
#include "core/experiment.h"
#include "matrix/generators.h"
#include "meridian/meridian.h"

#include "util/contract.h"

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "ablation_baselines",
      "Not a paper figure (implements §7's 'more extensively evaluate "
      "all the different mechanisms'): every latency-only scheme has "
      "low exact-closest accuracy under clustering yet works on the "
      "Euclidean control.");

  const bool quick = np::bench::QuickScale();
  const int num_queries = quick ? 300 : 1500;

  np::matrix::ClusteredConfig cconfig;
  cconfig.nets_per_cluster = 125;
  cconfig.num_clusters = 10;
  np::util::Rng cluster_rng(51);
  const auto clustered = np::matrix::GenerateClustered(cconfig, cluster_rng);

  np::util::Rng euclid_rng(52);
  np::matrix::EuclideanConfig econfig;
  econfig.dimensions = 3;
  const auto euclid = np::matrix::GenerateEuclidean(
      clustered.layout.peer_count(), econfig, euclid_rng);
  const np::core::MatrixSpace euclid_space(euclid.matrix);

  using Factory =
      std::function<std::unique_ptr<np::core::NearestPeerAlgorithm>()>;
  const std::vector<std::pair<std::string, Factory>> schemes = {
      {"oracle", [] { return std::make_unique<np::core::OracleNearest>(); }},
      {"random", [] { return std::make_unique<np::core::RandomNearest>(); }},
      {"meridian",
       [] {
         return std::make_unique<np::meridian::MeridianOverlay>(
             np::meridian::MeridianConfig{});
       }},
      {"karger-ruhl",
       [] {
         return std::make_unique<np::algos::KargerRuhlNearest>(
             np::algos::KargerRuhlConfig{});
       }},
      {"tapestry",
       [] {
         return std::make_unique<np::algos::TapestryNearest>(
             np::algos::TapestryConfig{});
       }},
      {"tiers",
       [] {
         return std::make_unique<np::algos::TiersNearest>(
             np::algos::TiersConfig{});
       }},
      {"beaconing",
       [] {
         return std::make_unique<np::algos::BeaconingNearest>(
             np::algos::BeaconingConfig{});
       }},
      {"pic",
       [] {
         return std::make_unique<np::coord::PicNearest>(
             np::coord::PicConfig{});
       }},
  };

  np::util::Table table({"scheme", "clustered_p_exact",
                         "clustered_p_cluster", "clustered_probes",
                         "euclid_p_exact", "euclid_stretch",
                         "euclid_probes"});
  for (const auto& [name, make] : schemes) {
    np::core::ExperimentConfig run;
    run.overlay_size = clustered.layout.peer_count() - 100;
    run.num_queries = num_queries;
    run.measurement_noise_frac = 0.02;
    run.measurement_noise_floor_ms = 0.5;

    auto clustered_algo = make();
    np::util::Rng rng_a(61);
    const auto cm = np::core::RunClusteredExperiment(
        clustered, *clustered_algo, run, rng_a);

    auto euclid_algo = make();
    np::util::Rng rng_b(62);
    const auto em = np::core::RunGenericExperiment(euclid_space,
                                                   *euclid_algo, run, rng_b);

    table.AddRow({name, np::util::FormatDouble(cm.p_exact_closest, 3),
                  np::util::FormatDouble(cm.p_correct_cluster, 3),
                  np::util::FormatDouble(cm.mean_probes, 1),
                  np::util::FormatDouble(em.p_exact_closest, 3),
                  np::util::FormatDouble(em.mean_stretch, 3),
                  np::util::FormatDouble(em.mean_probes, 1)});
  }
  np::bench::PrintTable(table);
  np::bench::PrintNote(
      "oracle probes every member (upper bound; its probe count is the "
      "brute-force cost every other scheme is trying to avoid).");
  return 0;
}
