// Figure 5: intra-domain vs inter-domain DNS-server latency CDFs.
//
// Paper setup (§3.1): same-domain server pairs approximate hosts in
// the same end-network; their latencies (predicted — King cannot
// measure same-domain pairs) are compared against same-cluster
// different-domain pairs (both predicted and King-measured), with hop
// caps of 5 and 10 on the distance to the common router.
//
// Expected shape: intra-domain latencies sit about an order of
// magnitude below inter-domain ones; the inter-domain predicted
// distribution tracks the measured one reasonably well.
#include "bench/common.h"
#include "measure/dns_study.h"
#include "net/tools.h"
#include "util/stats.h"

#include "util/contract.h"

namespace {

void PrintCdfRow(np::util::Table& table, const std::string& name,
                 const std::vector<double>& values) {
  if (values.empty()) {
    return;
  }
  const auto s = np::util::Summary::Of(values);
  table.AddRow({name, std::to_string(s.count),
                np::util::FormatDouble(s.p5, 3),
                np::util::FormatDouble(s.p25, 3),
                np::util::FormatDouble(s.median, 3),
                np::util::FormatDouble(s.p75, 3),
                np::util::FormatDouble(s.p95, 3)});
}

}  // namespace

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "fig5_intra_inter_domain",
      "Intra-domain latencies ~an order of magnitude below "
      "inter-domain; hop-cap 5 vs 10 changes intra-domain only "
      "modestly; inter-domain predicted matches measured.");

  const bool quick = np::bench::QuickScale();
  np::net::TopologyConfig config = np::net::DnsStudyConfig();
  if (quick) {
    config.dns_recursive_hosts = 2000;
  }
  np::util::Rng world_rng(1);
  const auto topology = np::net::Topology::Generate(config, world_rng);
  np::net::Tools tools(topology, np::net::NoiseConfig{}, np::util::Rng(2));
  np::util::Rng study_rng(3);
  const auto result = np::measure::RunDnsStudy(
      topology, tools, np::measure::DnsStudyOptions{}, study_rng);

  np::util::Table table({"series", "pairs", "p5_ms", "p25_ms", "median_ms",
                         "p75_ms", "p95_ms"});
  PrintCdfRow(table, "samedomain_max5hops(predicted)",
              result.IntraDomainLatencies(5));
  PrintCdfRow(table, "samedomain_max10hops(predicted)",
              result.IntraDomainLatencies(10));
  PrintCdfRow(table, "difdomain_max10hops(predicted)",
              result.InterDomainPredicted());
  PrintCdfRow(table, "difdomain_max10hops(king)",
              result.InterDomainMeasured());
  np::bench::PrintTable(table);

  const auto intra = result.IntraDomainLatencies(10);
  const auto inter = result.InterDomainMeasured();
  if (!intra.empty() && !inter.empty()) {
    const double gap = np::util::Percentile(inter, 50.0) /
                       std::max(np::util::Percentile(intra, 50.0), 1e-9);
    std::cout << "median_gap_inter/intra: "
              << np::util::FormatDouble(gap, 2) << "x (paper: ~10x)\n";
  }
  // "The inter-domain predicted latency distribution matches the
  // measured latency distribution reasonably well": KS distance
  // between the two CDFs (0 = identical).
  std::cout << "ks_distance_predicted_vs_measured: "
            << np::util::FormatDouble(
                   np::util::KolmogorovSmirnov(
                       result.InterDomainPredicted(),
                       result.InterDomainMeasured()),
                   3)
            << "\n";
  np::bench::PrintNote(
      "intra-domain pairs use predicted latencies — King's recursion "
      "is never forwarded between same-domain servers.");
  return 0;
}
