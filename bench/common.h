// Shared helpers for the figure-regeneration benches.
//
// Conventions: every bench prints
//   bench: <name>
//   paper: <what the paper's figure/table reports, and its shape>
//   ... "row:" data lines via util::Table ...
//   note:  <calibration remarks>
// so the whole evaluation can be re-read mechanically from the logs.
//
// Set NP_BENCH_SCALE=quick to run reduced workloads (CI smoke); the
// default regenerates at paper scale.
#pragma once

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "util/contract.h"
#include "util/table.h"

namespace np::bench {

/// Monotonic wall-clock timing for bench phases. Always steady_clock:
/// system_clock can jump (NTP) mid-run and must never be used for
/// durations. Pair with Reporter (bench/reporter.h) to persist
/// per-phase breakdowns instead of one lump figure.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  /// Milliseconds since construction or the last Reset().
  double ElapsedMs() const {
    NP_LINT_SUPPRESS("banned-call", "wall_* quarantine: bench timing");
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(elapsed).count();
  }

  void Reset() {
    NP_LINT_SUPPRESS("banned-call", "wall_* quarantine: bench timing");
    start_ = std::chrono::steady_clock::now();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline bool QuickScale() {
  const char* scale = std::getenv("NP_BENCH_SCALE");
  return scale != nullptr && std::string(scale) == "quick";
}

inline void PrintHeader(const std::string& name, const std::string& paper) {
  std::cout << "bench: " << name << "\n";
  std::cout << "paper: " << paper << "\n";
  if (QuickScale()) {
    std::cout << "scale: quick (set NP_BENCH_SCALE= to run full)\n";
  } else {
    std::cout << "scale: full\n";
  }
}

inline void PrintTable(const util::Table& table) {
  std::cout << table.Render();
}

inline void PrintNote(const std::string& note) {
  std::cout << "note: " << note << "\n";
}

}  // namespace np::bench
