// Ablation B: ring capacity and ring-member selection policy.
//
// Meridian picks ring members to maximize their hypervolume; we
// approximate with greedy max-min (k-center) and compare against
// sum-distance and uniform-random selection, across ring sizes. §2.3
// argues that under the clustering condition diversity maximization
// cannot help ("any set of randomly chosen peers from the cluster has
// about the same hypervolume") — so policies should tie there, while
// on a Euclidean space diversity should win or at least never lose.
#include "bench/common.h"
#include "core/experiment.h"
#include "matrix/generators.h"
#include "meridian/meridian.h"

#include "util/contract.h"

namespace {

const char* PolicyName(np::meridian::RingSelectionPolicy policy) {
  switch (policy) {
    case np::meridian::RingSelectionPolicy::kRandom:
      return "random";
    case np::meridian::RingSelectionPolicy::kSumDistance:
      return "sumdist";
    case np::meridian::RingSelectionPolicy::kMaxMin:
      return "maxmin";
  }
  return "?";
}

}  // namespace

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "ablation_ring_selection",
      "Not a paper figure. §2.3 check: ring-member diversity policies "
      "tie under the clustering condition; ring size mostly buys "
      "correct-cluster probability, not exact-closest.");

  const bool quick = np::bench::QuickScale();
  const int num_queries = quick ? 300 : 1500;

  np::matrix::ClusteredConfig cconfig;
  cconfig.nets_per_cluster = 125;
  cconfig.num_clusters = 10;
  np::util::Rng world_rng(31);
  const auto world = np::matrix::GenerateClustered(cconfig, world_rng);

  np::util::Rng euclid_rng(32);
  np::matrix::EuclideanConfig econfig;
  econfig.dimensions = 3;
  const auto euclid = np::matrix::GenerateEuclidean(
      world.layout.peer_count(), econfig, euclid_rng);
  const np::core::MatrixSpace euclid_space(euclid.matrix);

  np::util::Table table({"ring_size", "policy", "clustered_p_exact",
                         "clustered_p_cluster", "euclid_p_exact",
                         "euclid_stretch"});
  for (const int ring_size : {4, 8, 16, 32}) {
    for (const auto policy : {np::meridian::RingSelectionPolicy::kRandom,
                              np::meridian::RingSelectionPolicy::kSumDistance,
                              np::meridian::RingSelectionPolicy::kMaxMin}) {
      np::meridian::MeridianConfig mconfig;
      mconfig.ring_size = ring_size;
      mconfig.selection = policy;

      np::meridian::MeridianOverlay clustered_algo{mconfig};
      np::core::ExperimentConfig run;
      run.overlay_size = world.layout.peer_count() - 100;
      run.num_queries = num_queries;
      np::util::Rng rng_a(41);
      const auto cm = np::core::RunClusteredExperiment(world, clustered_algo,
                                                       run, rng_a);

      np::meridian::MeridianOverlay euclid_algo{mconfig};
      np::util::Rng rng_b(42);
      const auto em = np::core::RunGenericExperiment(euclid_space,
                                                     euclid_algo, run, rng_b);

      table.AddRow({std::to_string(ring_size), PolicyName(policy),
                    np::util::FormatDouble(cm.p_exact_closest, 3),
                    np::util::FormatDouble(cm.p_correct_cluster, 3),
                    np::util::FormatDouble(em.p_exact_closest, 3),
                    np::util::FormatDouble(em.mean_stretch, 3)});
    }
  }
  np::bench::PrintTable(table);
  return 0;
}
