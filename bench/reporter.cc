#include "bench/reporter.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "bench/common.h"
#include "util/contract.h"
#include "util/error.h"

namespace np::bench {
namespace {

/// JSON-safe number formatting: fixed notation with enough digits for
/// ms-resolution timings and ratios; never locale-dependent. inf/nan
/// (e.g. a speedup ratio over a 0 ms phase on a coarse clock) have no
/// JSON literal and serialize as null.
std::string FormatNumber(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out.precision(6);
  out << std::fixed << v;
  return out.str();
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      // RFC 8259: control characters must be \u-escaped.
      constexpr char kHex[] = "0123456789abcdef";
      out += "\\u00";
      out.push_back(kHex[(c >> 4) & 0xF]);
      out.push_back(kHex[c & 0xF]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

PhaseTimer::PhaseTimer(Reporter& reporter, std::string name, double ops)
    : reporter_(&reporter),
      name_(std::move(name)),
      ops_(ops),
      start_(std::chrono::steady_clock::now()) {}

PhaseTimer::PhaseTimer(PhaseTimer&& other) noexcept
    : reporter_(other.reporter_),
      name_(std::move(other.name_)),
      ops_(other.ops_),
      start_(other.start_),
      stopped_(other.stopped_) {
  other.stopped_ = true;
}

double PhaseTimer::Stop() {
  if (stopped_) {
    return 0.0;
  }
  stopped_ = true;
  NP_LINT_SUPPRESS("banned-call", "wall_* quarantine: wall_ms phases");
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const double wall_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  reporter_->RecordPhase(name_, wall_ms, ops_);
  return wall_ms;
}

PhaseTimer::~PhaseTimer() { Stop(); }

Reporter::Reporter(std::string name) : name_(std::move(name)) {}

PhaseTimer Reporter::Phase(std::string name, double ops) {
  return PhaseTimer(*this, std::move(name), ops);
}

void Reporter::RecordPhase(const std::string& name, double wall_ms,
                           double ops) {
  phases_.push_back({name, wall_ms, ops});
}

void Reporter::Derive(const std::string& metric, double value) {
  derived_.emplace_back(metric, value);
}

double Reporter::PhaseMs(const std::string& name) const {
  for (const PhaseRecord& p : phases_) {
    if (p.name == name) {
      return p.wall_ms;
    }
  }
  NP_ENSURE(false, "unknown bench phase: " + name);
  return 0.0;  // unreachable
}

std::string Reporter::ToJson() const {
  std::ostringstream out;
  // Integers below stream through `out` directly; keep the whole
  // report locale-independent, not just the FormatNumber doubles.
  out.imbue(std::locale::classic());
  out << "{\n";
  out << "  \"bench\": \"" << EscapeJson(name_) << "\",\n";
  out << "  \"scale\": \"" << (QuickScale() ? "quick" : "full") << "\",\n";
  out << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n";
  out << "  \"phases\": [\n";
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const PhaseRecord& p = phases_[i];
    out << "    {\"name\": \"" << EscapeJson(p.name) << "\", \"wall_ms\": "
        << FormatNumber(p.wall_ms) << ", \"ops\": " << FormatNumber(p.ops)
        << ", \"ops_per_sec\": "
        << FormatNumber(p.wall_ms > 0.0 ? p.ops / (p.wall_ms / 1000.0) : 0.0)
        << "}" << (i + 1 < phases_.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"derived\": {";
  for (std::size_t i = 0; i < derived_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << EscapeJson(derived_[i].first)
        << "\": " << FormatNumber(derived_[i].second);
  }
  out << (derived_.empty() ? "}" : "\n  }") << "\n";
  out << "}\n";
  return out.str();
}

void Reporter::Write() const {
  std::cout << "phase breakdown (" << name_ << "):\n";
  for (const PhaseRecord& p : phases_) {
    std::cout << "  " << p.name << ": " << FormatNumber(p.wall_ms) << " ms";
    if (p.ops > 0.0 && p.wall_ms > 0.0) {
      std::cout << " (" << FormatNumber(p.ops / (p.wall_ms / 1000.0))
                << " ops/sec)";
    }
    std::cout << "\n";
  }
  for (const auto& [metric, value] : derived_) {
    std::cout << "  " << metric << " = " << FormatNumber(value) << "\n";
  }

  std::string dir = ".";
  if (const char* env = std::getenv("NP_BENCH_JSON_DIR")) {
    dir = env;
  }
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream file(path);
  NP_ENSURE(file.good(), "cannot open bench report for writing: " + path);
  file << ToJson();
  std::cout << "report: " << path << "\n";
}

}  // namespace np::bench
