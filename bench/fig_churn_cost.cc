// fig_churn_cost: maintenance traffic per churn event and query
// traffic per lookup for every algorithm class, under the four churn
// models the schedule generator supports (exponential sessions,
// lognormal sessions, Pareto sessions, diurnal lognormal waves) on
// one clustered world and identical schedules per model.
//
// Not a paper figure: the paper measures static snapshots. This is
// the deployment-economics companion — what each scheme pays to keep
// its overlay consistent while the membership churns — and the
// head-to-head that justifies incremental Tiers: `tiers` (repair)
// must bill strictly below `tiers-rebuild` (the old per-epoch rebuild
// cost model) on the same schedule.
//
// Emits BENCH_churn_models.json: one phase per (model, algorithm)
// scenario run, and derived metrics
//   <model>_<algo>_maint_per_event, <model>_<algo>_msgs_per_query,
//   <model>_tiers_rebuild_over_repair  (expected > 1)
#include <memory>
#include <string>
#include <vector>

#include "bench/algo_factory.h"
#include "bench/common.h"
#include "bench/reporter.h"
#include "core/scenario.h"
#include "matrix/generators.h"

#include "util/contract.h"

namespace {

using np::core::ChurnSchedule;
using np::core::ChurnScheduleConfig;
using np::core::DiurnalConfig;
using np::core::ScenarioReport;
using np::core::SessionModel;

struct ModelCase {
  std::string name;
  ChurnScheduleConfig config;
};

std::vector<ModelCase> Models(bool quick) {
  ChurnScheduleConfig base;
  base.duration_s = quick ? 240.0 : 600.0;
  base.events_per_s = quick ? 0.5 : 0.8;
  base.mean_session_s = quick ? 90.0 : 240.0;
  base.seed = 13;

  std::vector<ModelCase> models;
  {
    ChurnScheduleConfig config = base;
    config.session_model = SessionModel::kExponential;
    models.push_back({"exponential", config});
  }
  {
    ChurnScheduleConfig config = base;
    config.session_model = SessionModel::kLogNormal;
    config.lognormal_sigma = 1.5;
    models.push_back({"lognormal", config});
  }
  {
    ChurnScheduleConfig config = base;
    config.session_model = SessionModel::kPareto;
    config.pareto_alpha = 1.6;
    models.push_back({"pareto", config});
  }
  {
    ChurnScheduleConfig config = base;
    config.session_model = SessionModel::kLogNormal;
    config.lognormal_sigma = 1.5;
    config.diurnal.day_s = base.duration_s / 2.0;  // two waves per run
    config.diurnal.amplitude = 0.9;
    models.push_back({"diurnal", config});
  }
  return models;
}

}  // namespace

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "fig_churn_cost",
      "Not a paper figure. Maintenance messages per churn event and "
      "messages per query, per algorithm, under exponential / lognormal "
      "/ pareto / diurnal churn on one clustered world.");
  const bool quick = np::bench::QuickScale();

  np::matrix::ClusteredConfig wconfig;
  wconfig.num_clusters = quick ? 4 : 8;
  wconfig.nets_per_cluster = quick ? 15 : 40;
  wconfig.peers_per_net = 2;
  wconfig.delta = 0.8;
  np::util::Rng wrng(7);
  const auto world = np::matrix::GenerateClustered(wconfig, wrng);
  const np::core::MatrixSpace space(world.matrix);

  np::core::ScenarioConfig sconfig;
  sconfig.initial_overlay =
      static_cast<np::NodeId>(world.layout.peer_count() * 2 / 3);
  sconfig.epochs = 4;
  sconfig.queries_per_epoch = quick ? 80 : 250;
  sconfig.num_threads = 0;
  sconfig.seed = 11;

  const std::vector<std::string> algorithms = {
      "meridian", "karger-ruhl", "tapestry", "beaconing", "tiers",
      "tiers-rebuild"};

  np::bench::Reporter reporter("churn_models");
  np::util::Table table({"model", "algorithm", "p_exact_final",
                         "msgs/query", "maint/event"});
  for (const ModelCase& model : Models(quick)) {
    const ChurnSchedule schedule = ChurnSchedule::Poisson(model.config);
    double repair_bill = 0.0;
    double rebuild_bill = 0.0;
    for (const std::string& name : algorithms) {
      const auto algo = np::bench::MakeBenchAlgorithm(name);
      ScenarioReport report;
      {
        auto phase = reporter.Phase(
            "scenario_" + model.name + "_" + name,
            static_cast<double>(sconfig.epochs * sconfig.queries_per_epoch));
        report = RunScenario(space, &world.layout, *algo, schedule, sconfig);
      }
      reporter.Derive(model.name + "_" + name + "_maint_per_event",
                      report.maintenance_per_event);
      reporter.Derive(model.name + "_" + name + "_msgs_per_query",
                      report.messages_per_query);
      if (name == "tiers") {
        repair_bill = report.maintenance_per_event;
      } else if (name == "tiers-rebuild") {
        rebuild_bill = report.maintenance_per_event;
      }
      table.AddRow({model.name, name,
                    np::util::FormatDouble(
                        report.epochs.back().p_exact_closest, 3),
                    np::util::FormatDouble(report.messages_per_query, 1),
                    np::util::FormatDouble(report.maintenance_per_event, 1)});
    }
    reporter.Derive(model.name + "_tiers_rebuild_over_repair",
                    repair_bill > 0.0 ? rebuild_bill / repair_bill : 0.0);
  }
  np::bench::PrintTable(table);
  np::bench::PrintNote(
      "identical schedule per model across algorithms; tiers-rebuild is "
      "the pre-repair cost model (full rebuild per churned epoch), so "
      "every *_tiers_rebuild_over_repair must stay > 1.");
  reporter.Write();
  return 0;
}
