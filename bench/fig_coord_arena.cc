// fig_coord_arena: the coordinate nearest-peer schemes (coord-vivaldi,
// coord-pic, coord-landmark) head-to-head with the structured overlays
// (karger-ruhl, tiers, beaconing) under session churn, sweeping
// n ∈ {10^3, 10^4, 10^5} on the implicit embedded-coordinate backend.
//
// Not a paper figure: the paper predates deployed coordinate systems'
// maturity and could not evaluate them (§2.2 discusses the embedding
// substrate). This is the msgs-per-query vs P(exact) tradeoff the
// coordinate approach buys: queries cost O(placement + top-k
// refinement) real probes instead of a structured search, while the
// embedding's accuracy — degraded honestly by churn, since joins,
// departures and keep-fresh gossip all bill through the probe ledger —
// bounds how often the top-k candidate list still contains the true
// nearest peer.
//
// Emits BENCH_coord_arena.json: one phase per (n, model, algorithm)
// scenario run, and derived metrics
//   n<k>_<model>_<algo>_p_exact, _msgs_per_query, _maint_per_event,
//   _build_messages,
//   n<k>_<model>_kr_query_cost_over_vivaldi  (expected > 1: the
//   structured search pays more per query than placement + top-k).
// All derived metrics are deterministic (fixed seeds, thread-invariant
// engine) and CI-gated against a committed baseline via
// bench_compare.py --derived / --require. The quick scale (CI smoke)
// sweeps n ∈ {1000, 4000}.
#include <memory>
#include <string>
#include <vector>

#include "bench/algo_factory.h"
#include "bench/common.h"
#include "bench/reporter.h"
#include "core/scenario.h"
#include "core/space_factory.h"
#include "matrix/embedded_space.h"

#include "util/contract.h"

namespace {

using np::NodeId;
using np::bench::MakeBenchAlgorithm;
using np::core::ChurnSchedule;
using np::core::ChurnScheduleConfig;
using np::core::ScenarioConfig;
using np::core::ScenarioReport;
using np::core::SessionModel;
using np::core::SpaceFactory;

struct ModelCase {
  std::string name;
  ChurnSchedule schedule;
};

/// Session churn scaled to the overlay: the event rate keeps the same
/// churn pressure per member at every sweep point (2 ev/s at an
/// overlay of 3000 — the scenarios/coord_arena.json operating point).
std::vector<ModelCase> Models(NodeId overlay) {
  ChurnScheduleConfig base;
  base.duration_s = 600.0;
  base.events_per_s = static_cast<double>(overlay) / 1500.0;
  base.mean_session_s = 240.0;
  base.seed = 41;

  std::vector<ModelCase> models;
  {
    ChurnScheduleConfig config = base;
    config.session_model = SessionModel::kLogNormal;
    config.lognormal_sigma = 1.5;
    models.push_back({"lognormal", ChurnSchedule::Poisson(config)});
  }
  {
    ChurnScheduleConfig config = base;
    config.session_model = SessionModel::kPareto;
    config.pareto_alpha = 1.6;
    models.push_back({"pareto", ChurnSchedule::Poisson(config)});
  }
  return models;
}

}  // namespace

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "fig_coord_arena",
      "Not a paper figure. Coordinate nearest-peer schemes vs structured "
      "overlays under lognormal/pareto session churn: P(exact closest), "
      "messages per query, maintenance per event and build cost, "
      "n in {1e3, 1e4, 1e5} on the implicit embedded backend.");
  const bool quick = np::bench::QuickScale();

  const std::vector<NodeId> sweep =
      quick ? std::vector<NodeId>{1000, 4000}
            : std::vector<NodeId>{1000, 10000, 100000};
  const int queries = quick ? 60 : 200;

  const std::vector<std::string> algorithms = {
      "coord-vivaldi", "coord-pic", "coord-landmark",
      "karger-ruhl",   "tiers",     "beaconing"};

  np::bench::Reporter reporter("coord_arena");
  np::util::Table table({"n", "model", "algorithm", "members", "p_exact",
                         "msgs/query", "maint/event", "build_msgs"});
  for (const NodeId n : sweep) {
    np::matrix::EmbeddedSpaceConfig wconfig;
    wconfig.num_nodes = n;
    wconfig.dimensions = 3;
    wconfig.side_ms = 100.0;
    wconfig.distortion = 0.1;
    wconfig.seed = 23;
    const SpaceFactory world = SpaceFactory::MakeEmbedded(wconfig);

    ScenarioConfig sconfig;
    sconfig.initial_overlay = n * 3 / 10;
    sconfig.epochs = 3;
    sconfig.queries_per_epoch = queries;
    sconfig.num_threads = 0;
    sconfig.seed = 13;

    for (const ModelCase& model : Models(sconfig.initial_overlay)) {
      double vivaldi_query_cost = 0.0;
      double kr_query_cost = 0.0;
      for (const std::string& name : algorithms) {
        const std::string key =
            "n" + std::to_string(n) + "_" + model.name + "_" + name;
        const auto algo = MakeBenchAlgorithm(name);
        ScenarioReport report;
        {
          auto phase = reporter.Phase(
              "scenario_" + key,
              static_cast<double>(sconfig.epochs *
                                  sconfig.queries_per_epoch));
          report = RunScenario(world.space(), world.layout(), *algo,
                               model.schedule, sconfig);
        }
        const np::core::EpochReport& last = report.epochs.back();
        reporter.Derive(key + "_p_exact", last.p_exact_closest);
        reporter.Derive(key + "_msgs_per_query", report.messages_per_query);
        reporter.Derive(key + "_maint_per_event",
                        report.maintenance_per_event);
        reporter.Derive(key + "_build_messages",
                        static_cast<double>(report.build_messages));
        if (name == "coord-vivaldi") {
          vivaldi_query_cost = report.messages_per_query;
        } else if (name == "karger-ruhl") {
          kr_query_cost = report.messages_per_query;
        }
        table.AddRow({std::to_string(n), model.name, name,
                      std::to_string(report.final_members),
                      np::util::FormatDouble(last.p_exact_closest, 3),
                      np::util::FormatDouble(report.messages_per_query, 1),
                      np::util::FormatDouble(report.maintenance_per_event, 1),
                      std::to_string(report.build_messages)});
      }
      reporter.Derive(
          "n" + std::to_string(n) + "_" + model.name +
              "_kr_query_cost_over_vivaldi",
          vivaldi_query_cost > 0.0 ? kr_query_cost / vivaldi_query_cost
                                   : 0.0);
    }
  }
  np::bench::PrintTable(table);
  np::bench::PrintNote(
      "identical schedule per (n, model) across algorithms; coordinate "
      "schemes answer queries from placement + top-k refinement probes "
      "(flat msgs/query), the structured overlays search — every "
      "*_kr_query_cost_over_vivaldi must stay > 1 while coord-* p_exact "
      "rides on embedding accuracy degraded honestly by churn.");
  reporter.Write();
  return 0;
}
