// Figure 11: false-positive and false-negative rates of the IP-prefix
// heuristic as a function of matching prefix length.
//
// Paper setup (§5): same peer population and traceroute graph as Fig
// 10; "close" = within 10 ms; per-peer FP rate = far peers sharing the
// prefix / all far peers; FN rate = close peers NOT sharing the prefix
// / all close peers; medians across the ~2400-peer population.
//
// Expected shape: FP falls with longer prefixes, FN rises; no sweet
// spot (FP > 0.1 at <= 14 bits while FN keeps growing past /16).
#include "bench/common.h"
#include "measure/heuristic_eval.h"
#include "net/tools.h"

#include "util/contract.h"

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "fig11_prefix_rates",
      "Median FP rate falls and median FN rate rises with prefix "
      "length; curves cross with no sweet spot.");

  const bool quick = np::bench::QuickScale();
  np::net::TopologyConfig config = np::net::AzureusStudyConfig();
  if (quick) {
    config.azureus_hosts = 15000;
  }
  np::util::Rng world_rng(1);
  const auto topology = np::net::Topology::Generate(config, world_rng);
  np::net::Tools tools(topology, np::net::NoiseConfig{}, np::util::Rng(2));

  const auto peers = topology.HostsOfKind(np::net::HostKind::kAzureusPeer);
  const auto graph = np::measure::PathGraph::Build(topology, tools, peers);
  const auto sets = np::measure::ComputeCloseSets(
      graph, np::measure::HeuristicEvalOptions{});
  std::cout << "population(peers with a <10ms neighbor): "
            << sets.PopulationSize() << " (paper: ~2400)\n";

  const auto rates =
      np::measure::EvaluatePrefixHeuristic(topology, sets, 8, 24);
  np::util::Table table({"prefix_bits", "median_fp_rate", "median_fn_rate",
                         "mean_candidates"});
  for (const auto& r : rates) {
    table.AddNumericRow({static_cast<double>(r.prefix_bits),
                         r.median_false_positive, r.median_false_negative,
                         r.mean_candidates},
                        3);
  }
  np::bench::PrintTable(table);
  np::bench::PrintNote(
      "mean_candidates = same-prefix peers a joiner would have to "
      "probe (the paper: >= ~250 at 14 bits or shorter).");
  return 0;
}
