// Ablation E: cost of hosting the §5 key-value maps on a Chord DHT.
//
// §5: "The participant peers can themselves host the key-value maps
// ... using one of several distributed hash table designs". This
// quantifies it: Chord lookup hops vs ring size, plus the total
// routing hops a UCL or prefix directory spends registering a peer
// population and answering joins.
#include <cmath>

#include "bench/common.h"
#include "dht/chord.h"
#include "mech/prefix_dir.h"
#include "mech/ucl.h"
#include "net/tools.h"
#include "util/stats.h"

#include "util/contract.h"

using np::NodeId;
using np::kInfiniteLatency;

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "ablation_dht_cost",
      "Not a paper figure. Chord lookups cost O(log n) hops; a UCL "
      "directory pays ~max_routers puts per join, the prefix directory "
      "exactly one.");

  const bool quick = np::bench::QuickScale();

  // Part 1: lookup hops vs ring size.
  {
    np::util::Table table({"ring_size", "mean_hops", "p95_hops",
                           "log2(n)"});
    std::vector<int> ring_sizes{256, 1024, 4096};
    if (!quick) {
      ring_sizes.push_back(16384);
    }
    for (const int n : ring_sizes) {
      std::vector<NodeId> nodes;
      for (NodeId i = 0; i < n; ++i) {
        nodes.push_back(i);
      }
      const np::dht::ChordRing ring(nodes, np::dht::ChordConfig{});
      np::util::Rng rng(static_cast<std::uint64_t>(n));
      std::vector<double> hops;
      for (int q = 0; q < 2000; ++q) {
        hops.push_back(static_cast<double>(ring.Lookup(rng(), rng).hops));
      }
      const auto s = np::util::Summary::Of(hops);
      table.AddNumericRow({static_cast<double>(n), s.mean, s.p95,
                           std::log2(static_cast<double>(n))},
                          2);
    }
    np::bench::PrintTable(table);
  }

  // Part 2: directory costs over a real peer population.
  {
    np::net::TopologyConfig config = np::net::SmallTestConfig();
    config.azureus_hosts = quick ? 1500 : 6000;
    config.azureus_tcp_respond_prob = 1.0;
    config.azureus_trace_respond_prob = 1.0;
    np::util::Rng world_rng(7);
    const auto topology = np::net::Topology::Generate(config, world_rng);
    const auto peers =
        topology.HostsOfKind(np::net::HostKind::kAzureusPeer);

    np::util::Table table({"directory", "peers", "map_ops", "total_hops",
                           "hops_per_op"});
    {
      np::mech::ChordMap map(peers, 0xD1);
      np::mech::UclDirectory dir(map, np::mech::UclOptions{});
      np::util::Rng rng(8);
      for (NodeId peer : peers) {
        dir.RegisterPeer(topology, peer, rng);
      }
      for (int join = 0; join < 200; ++join) {
        (void)dir.Candidates(topology, peers[rng.Index(peers.size())], rng,
                             kInfiniteLatency);
      }
      table.AddRow({"ucl(chord)", std::to_string(peers.size()),
                    std::to_string(map.operation_count()),
                    std::to_string(map.total_hops()),
                    np::util::FormatDouble(
                        static_cast<double>(map.total_hops()) /
                            static_cast<double>(map.operation_count()),
                        2)});
    }
    {
      np::mech::ChordMap map(peers, 0xD2);
      np::mech::PrefixDirectory dir(map, 24);
      np::util::Rng rng(9);
      for (NodeId peer : peers) {
        dir.RegisterPeer(topology, peer, rng);
      }
      for (int join = 0; join < 200; ++join) {
        (void)dir.Candidates(topology, peers[rng.Index(peers.size())], rng);
      }
      table.AddRow({"prefix24(chord)", std::to_string(peers.size()),
                    std::to_string(map.operation_count()),
                    std::to_string(map.total_hops()),
                    np::util::FormatDouble(
                        static_cast<double>(map.total_hops()) /
                            static_cast<double>(map.operation_count()),
                        2)});
    }
    np::bench::PrintTable(table);
  }
  return 0;
}
