// fig_fault_tolerance: accuracy, traffic, and load concentration for
// every algorithm class as the probe-loss rate sweeps 0% -> 30% (one
// retry allowed), plus a correlated regional-blackout head-to-head
// between Meridian and Tiers on the same world.
//
// Not a paper figure: the paper's experiments assume every probe
// answers. This is the robustness companion — what each scheme's
// accuracy and per-node load ledger look like once probes time out,
// targets crash, and the overlay must route around stale state. The
// blackout phase checks the load-concentration story quantitatively:
// Tiers funnels survivor traffic through the remaining cluster
// representatives (high per-node Gini) while Meridian's rings spread
// it, so blackout_tiers_gini_over_meridian must stay > 1.
//
// Emits BENCH_fault_tolerance.json: one phase per (loss, algorithm)
// scenario run plus the two blackout runs, and derived metrics
//   loss<pct>_<algo>_p_exact, loss<pct>_<algo>_msgs_per_query,
//   loss<pct>_<algo>_load_gini, loss<pct>_<algo>_p_qfail,
//   blackout_meridian_load_gini, blackout_tiers_load_gini,
//   blackout_tiers_gini_over_meridian  (expected > 1)
#include <memory>
#include <string>
#include <vector>

#include "bench/algo_factory.h"
#include "bench/common.h"
#include "bench/reporter.h"
#include "core/scenario.h"
#include "matrix/generators.h"
#include "util/table.h"

#include "util/contract.h"

namespace {

using np::core::ChurnSchedule;
using np::core::ChurnScheduleConfig;
using np::core::ScenarioConfig;
using np::core::ScenarioReport;

/// Mean over epochs — the sweep gates on these, and per-epoch query
/// counts are equal so the unweighted mean is the run-wide rate.
double MeanPExact(const ScenarioReport& report) {
  double sum = 0.0;
  for (const auto& epoch : report.epochs) sum += epoch.p_exact_closest;
  return report.epochs.empty() ? 0.0
                               : sum / static_cast<double>(report.epochs.size());
}

double MeanPQueryFailed(const ScenarioReport& report) {
  double sum = 0.0;
  for (const auto& epoch : report.epochs) sum += epoch.p_query_failed;
  return report.epochs.empty() ? 0.0
                               : sum / static_cast<double>(report.epochs.size());
}

}  // namespace

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "fig_fault_tolerance",
      "Not a paper figure. p_exact, msgs/query, failed-query rate and "
      "per-node load Gini per algorithm as probe loss sweeps 0..30% "
      "(retry 2), plus a regional-blackout Meridian-vs-Tiers "
      "load-concentration head-to-head on one clustered world.");
  const bool quick = np::bench::QuickScale();

  np::matrix::ClusteredConfig wconfig;
  wconfig.num_clusters = quick ? 4 : 8;
  wconfig.nets_per_cluster = quick ? 15 : 40;
  wconfig.peers_per_net = 2;
  wconfig.delta = 0.8;
  np::util::Rng wrng(7);
  const auto world = np::matrix::GenerateClustered(wconfig, wrng);
  const np::core::MatrixSpace space(world.matrix);

  ChurnScheduleConfig cconfig;
  cconfig.duration_s = quick ? 240.0 : 400.0;
  cconfig.events_per_s = quick ? 0.3 : 0.5;
  cconfig.join_fraction = 0.5;
  cconfig.seed = 13;
  const ChurnSchedule schedule = ChurnSchedule::Poisson(cconfig);

  ScenarioConfig sconfig;
  sconfig.initial_overlay =
      static_cast<np::NodeId>(world.layout.peer_count() * 2 / 3);
  sconfig.epochs = 4;
  sconfig.queries_per_epoch = quick ? 80 : 250;
  sconfig.num_threads = 0;
  sconfig.fault.max_attempts = 2;
  sconfig.fault.track_load = true;
  sconfig.seed = 11;

  const std::vector<std::string> algorithms = {
      "meridian", "karger-ruhl", "tapestry", "beaconing", "tiers"};
  const std::vector<double> loss_rates = {0.0, 0.1, 0.2, 0.3};

  np::bench::Reporter reporter("fault_tolerance");
  np::util::Table table({"loss", "algorithm", "p_exact", "p_qfail",
                         "msgs/query", "load_gini"});
  for (const double loss : loss_rates) {
    const std::string pct =
        std::to_string(static_cast<int>(loss * 100.0 + 0.5));
    for (const std::string& name : algorithms) {
      ScenarioConfig run = sconfig;
      run.fault.loss_rate = loss;
      const auto algo = np::bench::MakeBenchAlgorithm(name);
      ScenarioReport report;
      {
        auto phase = reporter.Phase(
            "scenario_loss" + pct + "_" + name,
            static_cast<double>(run.epochs * run.queries_per_epoch));
        report = RunScenario(space, &world.layout, *algo, schedule, run);
      }
      const double p_exact = MeanPExact(report);
      const double p_qfail = MeanPQueryFailed(report);
      reporter.Derive("loss" + pct + "_" + name + "_p_exact", p_exact);
      reporter.Derive("loss" + pct + "_" + name + "_msgs_per_query",
                      report.messages_per_query);
      reporter.Derive("loss" + pct + "_" + name + "_load_gini",
                      report.load.gini);
      reporter.Derive("loss" + pct + "_" + name + "_p_qfail", p_qfail);
      table.AddRow({pct + "%", name, np::util::FormatDouble(p_exact, 3),
                    np::util::FormatDouble(p_qfail, 3),
                    np::util::FormatDouble(report.messages_per_query, 1),
                    np::util::FormatDouble(report.load.gini, 3)});
    }
  }

  // Blackout head-to-head: every live member of one cluster crashes
  // at mid-run under 10% loss; whose survivors carry the traffic?
  ScenarioConfig bconfig = sconfig;
  bconfig.fault.loss_rate = 0.1;
  bconfig.blackouts.push_back({cconfig.duration_s / 2.0, 2});
  double meridian_gini = 0.0;
  double tiers_gini = 0.0;
  for (const std::string& name : {std::string("meridian"),
                                  std::string("tiers")}) {
    const auto algo = np::bench::MakeBenchAlgorithm(name);
    ScenarioReport report;
    {
      auto phase = reporter.Phase(
          "scenario_blackout_" + name,
          static_cast<double>(bconfig.epochs * bconfig.queries_per_epoch));
      report = RunScenario(space, &world.layout, *algo, schedule, bconfig);
    }
    reporter.Derive("blackout_" + name + "_load_gini", report.load.gini);
    table.AddRow({"blackout", name,
                  np::util::FormatDouble(MeanPExact(report), 3),
                  np::util::FormatDouble(MeanPQueryFailed(report), 3),
                  np::util::FormatDouble(report.messages_per_query, 1),
                  np::util::FormatDouble(report.load.gini, 3)});
    if (name == "meridian") {
      meridian_gini = report.load.gini;
    } else {
      tiers_gini = report.load.gini;
    }
  }
  reporter.Derive("blackout_tiers_gini_over_meridian",
                  meridian_gini > 0.0 ? tiers_gini / meridian_gini : 0.0);

  np::bench::PrintTable(table);
  np::bench::PrintNote(
      "identical churn schedule across all runs; loss sweep isolates "
      "the probe-loss axis (no crashes), blackout phase adds the "
      "correlated mass-crash. Tiers concentrates post-blackout load on "
      "surviving representatives, so blackout_tiers_gini_over_meridian "
      "must stay > 1.");
  reporter.Write();
  return 0;
}
