// fig_serving_throughput: query throughput and tail latency of the
// snapshot serving mode as reader threads and churn rate sweep, on the
// implicit EmbeddedSpace backend at deployment scale (n = 10^4 full,
// 10^5 spot point; quick scale n = 2000 for the CI smoke).
//
// Not a paper figure: the paper's simulations are one-shot and
// offline. This is the serving axis — RCU-style immutable snapshots
// let N reader threads answer queries lock-free while a single writer
// churns the live overlay toward the next epoch, so the question
// becomes what a deployed lookup service would ask: how does qps scale
// with readers, and what does churn pressure do to the tail?
//
// Two sweeps per algorithm (karger-ruhl and tiers — the accuracy and
// the cheap-maintenance representative):
//  * reader sweep — readers ∈ {1, 2, 4, 8} at the mid churn rate;
//  * churn sweep  — events/s ∈ {0.5, 2, 8} at 4 readers.
//
// Emits BENCH_serving_throughput.json. Derived metrics starting with
// "det_" are deterministic (fixed seeds; the serving engine's
// ScenarioReport is bit-identical to serial replay for every reader
// count — both facts asserted here and exported as det_ flags) and
// CI-gated via bench_compare.py --derived/--require; the wall_
// qps/latency metrics are machine-dependent, recorded by the
// bench-multicore job summary and never gated on exact values.
#include <string>
#include <vector>

#include "bench/algo_factory.h"
#include "bench/common.h"
#include "bench/reporter.h"
#include "core/scenario.h"
#include "core/serving.h"
#include "core/space_factory.h"
#include "matrix/embedded_space.h"
#include "util/error.h"

#include "util/contract.h"

namespace {

using np::NodeId;
using np::bench::MakeBenchAlgorithm;
using np::core::ChurnSchedule;
using np::core::ChurnScheduleConfig;
using np::core::RunScenario;
using np::core::RunServing;
using np::core::ScenarioConfig;
using np::core::ScenarioReport;
using np::core::ServingConfig;
using np::core::ServingReport;
using np::core::SpaceFactory;

ChurnSchedule SessionSchedule(double events_per_s) {
  // Lognormal sessions (heavy-tailed lifetimes) — the serving
  // scenario's churn model; only the arrival rate sweeps.
  ChurnScheduleConfig config;
  config.duration_s = 600.0;
  config.events_per_s = events_per_s;
  config.mean_session_s = 240.0;
  config.session_model = np::core::SessionModel::kLogNormal;
  config.lognormal_sigma = 1.5;
  config.seed = 29;
  return ChurnSchedule::Poisson(config);
}

/// Mean over epochs of a staleness field.
double MeanExactLive(const ServingReport& report) {
  double sum = 0.0;
  for (const auto& s : report.staleness) sum += s.p_exact_live;
  return report.staleness.empty()
             ? 0.0
             : sum / static_cast<double>(report.staleness.size());
}

double MeanFoundDeparted(const ServingReport& report) {
  double sum = 0.0;
  for (const auto& s : report.staleness) sum += s.p_found_departed;
  return report.staleness.empty()
             ? 0.0
             : sum / static_cast<double>(report.staleness.size());
}

/// Churn-rate tag for metric names: 0.5 -> "c05", 2 -> "c2", 8 -> "c8".
std::string ChurnTag(double events_per_s) {
  if (events_per_s < 1.0) {
    return "c0" + std::to_string(static_cast<int>(events_per_s * 10.0 + 0.5));
  }
  return "c" + std::to_string(static_cast<int>(events_per_s + 0.5));
}

}  // namespace

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "fig_serving_throughput",
      "Not a paper figure. Serving-mode qps and p50/p99 query latency "
      "vs reader threads {1,2,4,8} and churn rate {0.5,2,8}/s on an "
      "embedded world under lognormal session churn, with the "
      "snapshot-vs-replay bit-identity and reader-count invariance of "
      "every deterministic metric asserted and exported as gates.");
  const bool quick = np::bench::QuickScale();

  const NodeId n = quick ? 2000 : 10000;
  np::matrix::EmbeddedSpaceConfig wconfig;
  wconfig.num_nodes = n;
  wconfig.dimensions = 3;
  wconfig.side_ms = 100.0;
  wconfig.distortion = 0.1;
  wconfig.seed = 17;
  const SpaceFactory world = SpaceFactory::MakeEmbedded(wconfig);

  ScenarioConfig sconfig;
  sconfig.initial_overlay = n * 3 / 10;
  sconfig.epochs = 3;
  sconfig.queries_per_epoch = quick ? 150 : 400;
  sconfig.num_threads = 1;
  sconfig.seed = 11;

  const std::vector<std::string> algorithms = {"karger-ruhl", "tiers"};
  const std::vector<int> reader_sweep = {1, 2, 4, 8};
  const std::vector<double> churn_sweep = {0.5, 2.0, 8.0};
  const double mid_churn = 2.0;

  np::bench::Reporter reporter("serving_throughput");
  np::util::Table table({"algorithm", "readers", "churn/s", "qps", "p50_us",
                         "p99_us", "p_exact_live", "p_departed", "replay"});

  // All runs replay-identical, and every det_ metric reader-invariant:
  // both start at 1 and drop to 0 on the first violation.
  double all_replay_identical = 1.0;
  double reader_invariance = 1.0;

  for (const std::string& name : algorithms) {
    // Serial replay once per (algorithm, churn rate): the oracle every
    // reader count must reproduce bit-for-bit.
    for (const double churn : churn_sweep) {
      const ChurnSchedule schedule = SessionSchedule(churn);
      const auto replay_algo = MakeBenchAlgorithm(name);
      ScenarioReport replay;
      {
        auto phase = reporter.Phase(
            "replay_" + ChurnTag(churn) + "_" + name,
            static_cast<double>(sconfig.epochs * sconfig.queries_per_epoch));
        replay = RunScenario(world.space(), world.layout(), *replay_algo,
                             schedule, sconfig);
      }

      const std::vector<int>& readers =
          churn == mid_churn ? reader_sweep : std::vector<int>{4};
      // Staleness at the first reader count; later counts must match.
      double ref_exact_live = -1.0;
      double ref_departed = -1.0;
      for (const int r : readers) {
        ServingConfig serving;
        serving.scenario = sconfig;
        serving.reader_threads = r;
        const auto algo = MakeBenchAlgorithm(name);
        ServingReport report;
        {
          auto phase = reporter.Phase(
              "serving_" + ChurnTag(churn) + "_r" + std::to_string(r) + "_" +
                  name,
              static_cast<double>(sconfig.epochs *
                                  sconfig.queries_per_epoch));
          report = RunServing(world.space(), world.layout(), *algo, schedule,
                              serving);
        }
        if (!np::core::ScenarioReportsIdentical(report.scenario, replay)) {
          all_replay_identical = 0.0;
        }
        const double exact_live = MeanExactLive(report);
        const double departed = MeanFoundDeparted(report);
        if (ref_exact_live < 0.0) {
          ref_exact_live = exact_live;
          ref_departed = departed;
        } else if (exact_live != ref_exact_live || departed != ref_departed) {
          reader_invariance = 0.0;
        }

        const std::string wall_tag =
            "wall_" + ChurnTag(churn) + "_r" + std::to_string(r) + "_" + name;
        reporter.Derive(wall_tag + "_qps", report.qps);
        reporter.Derive(wall_tag + "_p50_us", report.query_latency_p50_us);
        reporter.Derive(wall_tag + "_p99_us", report.query_latency_p99_us);
        table.AddRow({name, std::to_string(r),
                      np::util::FormatDouble(churn, 1),
                      np::util::FormatDouble(report.qps, 0),
                      np::util::FormatDouble(report.query_latency_p50_us, 1),
                      np::util::FormatDouble(report.query_latency_p99_us, 1),
                      np::util::FormatDouble(exact_live, 3),
                      np::util::FormatDouble(departed, 3),
                      report.scenario.epochs.empty() ? "?" : "identical"});
      }
      // Deterministic per-(churn, algorithm) staleness — reader-count
      // invariant by the assertion above, so exported once.
      const std::string det_tag = "det_" + ChurnTag(churn) + "_" + name;
      reporter.Derive(det_tag + "_p_exact_live", ref_exact_live);
      reporter.Derive(det_tag + "_p_found_departed", ref_departed);
    }
  }

  reporter.Derive("det_replay_identical", all_replay_identical);
  reporter.Derive("det_reader_invariance", reader_invariance);
  NP_ENSURE(all_replay_identical == 1.0,
            "serving run diverged from serial replay");
  NP_ENSURE(reader_invariance == 1.0,
            "staleness metrics changed with the reader count");

  np::bench::PrintTable(table);
  np::bench::PrintNote(
      "det_ metrics are deterministic and CI-gated; wall_ qps/latency "
      "numbers are machine-dependent (recorded, never gated). Replay "
      "bit-identity and reader-count invariance are asserted in-process "
      "and exported as det_replay_identical / det_reader_invariance.");
  reporter.Write();
  return 0;
}
