// Ablation C: the §5 mechanisms against latency-only search, on the
// synthetic Internet (not a matrix world — the mechanisms need routers
// and IP addresses).
//
// §5: "the three approaches would be used in conjunction with existing
// near-peer finding algorithms to obtain maximum accuracy". We measure
// Meridian alone, each mechanism alone, and mechanism+Meridian hybrids:
// exact-closest rate, same-end-network rate, mean latency of the found
// peer, probe cost, and the mechanism hit rate.
#include <memory>

#include "bench/common.h"
#include "core/experiment.h"
#include "mech/hybrid.h"
#include "meridian/meridian.h"

#include "util/contract.h"

namespace {

using np::NodeId;

struct Score {
  double p_exact = 0.0;
  double p_same_net = 0.0;
  double mean_found_ms = 0.0;
  double mean_probes = 0.0;
};

Score Evaluate(np::core::NearestPeerAlgorithm& algo,
               const np::mech::TopologySpace& space,
               const std::vector<NodeId>& members,
               const std::vector<NodeId>& targets, std::uint64_t seed) {
  np::util::Rng rng(seed);
  np::util::Rng build_rng(seed ^ 0xB111D);
  algo.Build(space, members, build_rng);
  const np::core::MeteredSpace metered(space);
  const np::net::Topology& topology = space.topology();

  Score score;
  for (NodeId target : targets) {
    metered.ResetProbes();
    const auto result = algo.FindNearest(target, metered, rng);
    const NodeId truth =
        np::core::TrueClosestMember(space, members, target);
    const double found_latency = space.Latency(result.found, target);
    if (found_latency <= space.Latency(truth, target) + 1e-9) {
      score.p_exact += 1.0;
    }
    const auto& ht = topology.host(target);
    const auto& hf = topology.host(result.found);
    if (ht.endnet_id >= 0 && ht.endnet_id == hf.endnet_id) {
      score.p_same_net += 1.0;
    }
    score.mean_found_ms += found_latency;
    score.mean_probes += static_cast<double>(metered.probes());
  }
  const double n = static_cast<double>(targets.size());
  score.p_exact /= n;
  score.p_same_net /= n;
  score.mean_found_ms /= n;
  score.mean_probes /= n;
  return score;
}

std::unique_ptr<np::core::NearestPeerAlgorithm> MakeMeridian() {
  return std::make_unique<np::meridian::MeridianOverlay>(
      np::meridian::MeridianConfig{});
}

}  // namespace

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "ablation_mechanisms",
      "Not a paper figure (extends §5's preliminary evaluation): "
      "UCL/prefix hybrids recover the extreme-nearby peers that "
      "latency-only Meridian misses; multicast/registry help only "
      "where deployed.");

  const bool quick = np::bench::QuickScale();
  np::net::TopologyConfig config = np::net::SmallTestConfig();
  config.num_cities = 20;
  config.num_ases = 12;
  config.min_pops_per_as = 2;
  config.max_pops_per_as = 5;
  config.agg_levels = 3;
  config.endnets_per_pop_min = 4;
  config.endnets_per_pop_max = 16;
  config.dns_recursive_hosts = 0;
  config.azureus_hosts = quick ? 2000 : 5000;
  // Overlay participants cooperate: they answer probes.
  config.azureus_tcp_respond_prob = 1.0;
  config.azureus_trace_respond_prob = 1.0;
  np::util::Rng world_rng(1);
  const auto topology = np::net::Topology::Generate(config, world_rng);
  const np::mech::TopologySpace space(topology);

  auto peers = topology.HostsOfKind(np::net::HostKind::kAzureusPeer);
  np::util::Rng split_rng(2);
  split_rng.Shuffle(peers);
  const int num_targets = quick ? 150 : 300;
  std::vector<NodeId> targets(peers.end() - num_targets, peers.end());
  std::vector<NodeId> members(peers.begin(), peers.end() - num_targets);

  np::util::Table table({"scheme", "p_exact", "p_same_net", "found_ms",
                         "probes", "mech_hit_rate"});

  const auto add_row = [&](const std::string& name, const Score& s,
                           double hit_rate) {
    table.AddRow({name, np::util::FormatDouble(s.p_exact, 3),
                  np::util::FormatDouble(s.p_same_net, 3),
                  np::util::FormatDouble(s.mean_found_ms, 3),
                  np::util::FormatDouble(s.mean_probes, 1),
                  np::util::FormatDouble(hit_rate, 3)});
  };

  {
    auto meridian = MakeMeridian();
    add_row("meridian",
            Evaluate(*meridian, space, members, targets, 100), 0.0);
  }
  for (const auto mechanism :
       {np::mech::Mechanism::kUcl, np::mech::Mechanism::kPrefix,
        np::mech::Mechanism::kMulticast, np::mech::Mechanism::kRegistry}) {
    np::mech::HybridConfig hconfig;
    hconfig.mechanism = mechanism;
    {
      np::mech::HybridNearest alone(topology, hconfig, nullptr);
      const Score s = Evaluate(alone, space, members, targets, 200);
      add_row(std::string(np::mech::MechanismName(mechanism)) + "-only", s,
              alone.mechanism_hit_rate());
    }
    {
      np::mech::HybridNearest hybrid(topology, hconfig, MakeMeridian());
      const Score s = Evaluate(hybrid, space, members, targets, 300);
      add_row(std::string(np::mech::MechanismName(mechanism)) + "+meridian",
              s, hybrid.mechanism_hit_rate());
    }
  }
  np::bench::PrintTable(table);
  np::bench::PrintNote(
      "mech_hit_rate = queries answered by the mechanism without "
      "falling back (candidate within 1 ms).");
  return 0;
}
