// google-benchmark micro-benchmarks: the building blocks' raw costs
// (matrix generation, Meridian build/query, Chord lookups, Vivaldi
// training, topology latency queries, bounded Dijkstra).
#include <benchmark/benchmark.h>

#include "coord/vivaldi.h"
#include "core/experiment.h"
#include "dht/chord.h"
#include "matrix/generators.h"
#include "measure/path_graph.h"
#include "meridian/meridian.h"
#include "net/tools.h"

namespace {

using np::NodeId;

void BM_GenerateClustered(benchmark::State& state) {
  np::matrix::ClusteredConfig config;
  config.nets_per_cluster = static_cast<int>(state.range(0));
  config.num_clusters = 1250 / config.nets_per_cluster;
  for (auto _ : state) {
    np::util::Rng rng(1);
    auto world = np::matrix::GenerateClustered(config, rng);
    benchmark::DoNotOptimize(world.matrix.At(0, 1));
  }
}
BENCHMARK(BM_GenerateClustered)->Arg(25)->Arg(125);

void BM_MeridianBuild(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  np::util::Rng world_rng(2);
  np::matrix::EuclideanConfig config;
  const auto world = np::matrix::GenerateEuclidean(n, config, world_rng);
  const np::core::MatrixSpace space(world.matrix);
  std::vector<NodeId> members;
  for (NodeId i = 0; i < n; ++i) {
    members.push_back(i);
  }
  for (auto _ : state) {
    np::meridian::MeridianOverlay overlay{np::meridian::MeridianConfig{}};
    np::util::Rng rng(3);
    overlay.Build(space, members, rng);
    benchmark::DoNotOptimize(overlay.members().size());
  }
}
BENCHMARK(BM_MeridianBuild)->Arg(500)->Arg(1000)->Arg(2400)
    ->Unit(benchmark::kMillisecond);

void BM_MeridianQuery(benchmark::State& state) {
  const NodeId n = 2400;
  np::util::Rng world_rng(4);
  np::matrix::EuclideanConfig config;
  const auto world = np::matrix::GenerateEuclidean(n + 100, config,
                                                   world_rng);
  const np::core::MatrixSpace space(world.matrix);
  std::vector<NodeId> members;
  for (NodeId i = 0; i < n; ++i) {
    members.push_back(i);
  }
  np::meridian::MeridianOverlay overlay{np::meridian::MeridianConfig{}};
  np::util::Rng build_rng(5);
  overlay.Build(space, members, build_rng);
  const np::core::MeteredSpace metered(space);
  np::util::Rng rng(6);
  NodeId target = n;
  for (auto _ : state) {
    auto result = overlay.FindNearest(target, metered, rng);
    benchmark::DoNotOptimize(result.found);
    target = n + (target - n + 1) % 100;
  }
}
BENCHMARK(BM_MeridianQuery)->Unit(benchmark::kMicrosecond);

void BM_ChordLookup(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  std::vector<NodeId> nodes;
  for (NodeId i = 0; i < n; ++i) {
    nodes.push_back(i);
  }
  const np::dht::ChordRing ring(nodes, np::dht::ChordConfig{});
  np::util::Rng rng(7);
  for (auto _ : state) {
    auto result = ring.Lookup(rng(), rng);
    benchmark::DoNotOptimize(result.owner);
  }
}
BENCHMARK(BM_ChordLookup)->Arg(1024)->Arg(16384);

void BM_VivaldiTrain(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  np::util::Rng world_rng(8);
  np::matrix::EuclideanConfig config;
  const auto world = np::matrix::GenerateEuclidean(n, config, world_rng);
  const np::core::MatrixSpace space(world.matrix);
  std::vector<NodeId> members;
  for (NodeId i = 0; i < n; ++i) {
    members.push_back(i);
  }
  np::coord::VivaldiConfig vconfig;
  for (auto _ : state) {
    np::util::Rng rng(9);
    auto embedding =
        np::coord::VivaldiEmbedding::Train(space, members, vconfig, rng);
    benchmark::DoNotOptimize(embedding.dimensions());
  }
}
BENCHMARK(BM_VivaldiTrain)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_TopologyLatency(benchmark::State& state) {
  np::net::TopologyConfig config = np::net::SmallTestConfig();
  config.azureus_hosts = 2000;
  np::util::Rng world_rng(10);
  const auto topology = np::net::Topology::Generate(config, world_rng);
  const auto n = static_cast<NodeId>(topology.hosts().size());
  np::util::Rng rng(11);
  for (auto _ : state) {
    const NodeId a = static_cast<NodeId>(rng.Index(
        static_cast<std::size_t>(n)));
    const NodeId b = static_cast<NodeId>(rng.Index(
        static_cast<std::size_t>(n)));
    benchmark::DoNotOptimize(topology.LatencyBetween(a, b));
  }
}
BENCHMARK(BM_TopologyLatency);

void BM_PathGraphClosePeers(benchmark::State& state) {
  np::net::TopologyConfig config = np::net::SmallTestConfig();
  config.azureus_hosts = 3000;
  np::util::Rng world_rng(12);
  const auto topology = np::net::Topology::Generate(config, world_rng);
  np::net::Tools tools(topology, np::net::NoiseConfig{}, np::util::Rng(13));
  const auto graph = np::measure::PathGraph::Build(
      topology, tools, topology.HostsOfKind(np::net::HostKind::kAzureusPeer));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto close =
        graph.ClosePeers(graph.peers()[i % graph.peers().size()], 10.0);
    benchmark::DoNotOptimize(close.size());
    ++i;
  }
}
BENCHMARK(BM_PathGraphClosePeers)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
