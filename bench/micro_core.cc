// Core micro-benchmarks with machine-readable output (BENCH_core.json):
// the hot building blocks of the §4 simulation pipeline — Floyd-Warshall
// metric repair (serial reference vs blocked/parallel), the triangle
//-violation scan, allocation-free nearest-neighbour queries, Meridian
// build/query, and the full clustered experiment serial vs parallel.
//
// The derived speedup_* metrics are the acceptance numbers for the
// parallel simulation core: on an N-core box, metric_repair and the
// clustered experiment should both approach Nx, and every *_match /
// *_agreement metric must be 1 — matches are bitwise (parallel vs the
// same code path on one thread); metric_repair_serial_agreement
// compares blocked vs the serial triple loop within rounding, since
// the tile schedule associates float sums differently.
//
// NP_BENCH_SCALE=quick shrinks every workload (CI smoke); the default
// runs at paper scale (n = 2000 repair, ~2500-peer world, 5000
// queries).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "bench/common.h"
#include "bench/reporter.h"
#include "coord/vivaldi.h"
#include "core/experiment.h"
#include "dht/chord.h"
#include "matrix/generators.h"
#include "matrix/latency_matrix.h"
#include "measure/path_graph.h"
#include "meridian/meridian.h"
#include "net/tools.h"
#include "util/parallel.h"
#include "util/rng.h"

#include "util/contract.h"

namespace {

using np::LatencyMs;
using np::NodeId;

np::matrix::LatencyMatrix RandomMatrix(NodeId n, std::uint64_t seed) {
  np::matrix::LatencyMatrix m(n);
  np::util::Rng rng(seed);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      m.Set(i, j, rng.Uniform(0.1, 250.0));
    }
  }
  return m;
}

bool SameMatrix(const np::matrix::LatencyMatrix& a,
                const np::matrix::LatencyMatrix& b) {
  for (NodeId i = 0; i < a.size(); ++i) {
    for (NodeId j = 0; j < a.size(); ++j) {
      if (a.At(i, j) != b.At(i, j)) {
        return false;
      }
    }
  }
  return true;
}

double MaxRelDiff(const np::matrix::LatencyMatrix& a,
                  const np::matrix::LatencyMatrix& b) {
  double worst = 0.0;
  for (NodeId i = 0; i < a.size(); ++i) {
    for (NodeId j = 0; j < a.size(); ++j) {
      const double denom = std::max(std::abs(a.At(i, j)), 1e-12);
      worst = std::max(worst, std::abs(a.At(i, j) - b.At(i, j)) / denom);
    }
  }
  return worst;
}

bool SameMetrics(const np::core::ClusteredMetrics& a,
                 const np::core::ClusteredMetrics& b) {
  return a.p_exact_closest == b.p_exact_closest &&
         a.p_correct_cluster == b.p_correct_cluster &&
         a.p_same_net == b.p_same_net &&
         a.median_wrong_hub_latency_ms == b.median_wrong_hub_latency_ms &&
         a.mean_found_latency_ms == b.mean_found_latency_ms &&
         a.mean_probes == b.mean_probes && a.mean_hops == b.mean_hops;
}

void BenchMetricRepair(np::bench::Reporter& reporter, NodeId n) {
  const auto base = RandomMatrix(n, 1);
  const double relaxations =
      static_cast<double>(n) * static_cast<double>(n) * static_cast<double>(n);

  auto serial = base;
  {
    auto phase = reporter.Phase("metric_repair_serial", relaxations);
    serial.MetricRepairSerial();
  }
  auto blocked1 = base;
  {
    auto phase = reporter.Phase("metric_repair_blocked_1t", relaxations);
    blocked1.MetricRepair(1);
  }
  auto blockedN = base;
  {
    auto phase = reporter.Phase("metric_repair_blocked_all", relaxations);
    blockedN.MetricRepair(0);
  }
  reporter.Derive("speedup_metric_repair_blocked_1t",
                  reporter.PhaseMs("metric_repair_serial") /
                      reporter.PhaseMs("metric_repair_blocked_1t"));
  reporter.Derive("speedup_metric_repair_blocked_all",
                  reporter.PhaseMs("metric_repair_serial") /
                      reporter.PhaseMs("metric_repair_blocked_all"));
  // Thread invariance is exact; agreement with the serial loop is to
  // rounding only (the tile schedule associates float sums
  // differently), so it gets a tolerance, not a bitwise check.
  reporter.Derive("metric_repair_match_threads",
                  SameMatrix(blocked1, blockedN) ? 1.0 : 0.0);
  reporter.Derive("metric_repair_serial_agreement",
                  MaxRelDiff(serial, blocked1) <= 1e-9 ? 1.0 : 0.0);

  // Triangle-violation scan on the repaired metric (smaller n: the
  // scan is a strict O(n^3) with no early exit).
  const NodeId vn = std::min<NodeId>(n, 600);
  auto repaired = RandomMatrix(vn, 2);
  repaired.MetricRepair(0);
  const double checks = static_cast<double>(vn) * static_cast<double>(vn) *
                        static_cast<double>(vn);
  double v1 = 0.0;
  double vall = 0.0;
  {
    auto phase = reporter.Phase("triangle_violation_1t", checks);
    v1 = repaired.MaxTriangleViolation(1);
  }
  {
    auto phase = reporter.Phase("triangle_violation_all", checks);
    vall = repaired.MaxTriangleViolation(0);
  }
  reporter.Derive("speedup_triangle_violation",
                  reporter.PhaseMs("triangle_violation_1t") /
                      reporter.PhaseMs("triangle_violation_all"));
  reporter.Derive("triangle_violation_match", v1 == vall ? 1.0 : 0.0);
}

void BenchNearestQueries(np::bench::Reporter& reporter, NodeId n,
                         int rounds) {
  const auto m = RandomMatrix(n, 3);
  const int k = 16;
  {
    auto phase = reporter.Phase("nearest_to_alloc",
                                static_cast<double>(rounds) * n);
    for (int r = 0; r < rounds; ++r) {
      for (NodeId from = 0; from < n; ++from) {
        const auto nearest = m.NearestTo(from, k);
        if (nearest.empty()) {
          return;
        }
      }
    }
  }
  {
    std::vector<NodeId> scratch;
    auto phase = reporter.Phase("nearest_to_scratch",
                                static_cast<double>(rounds) * n);
    for (int r = 0; r < rounds; ++r) {
      for (NodeId from = 0; from < n; ++from) {
        m.NearestTo(from, k, scratch);
        if (scratch.empty()) {
          return;
        }
      }
    }
  }
  reporter.Derive("speedup_nearest_to_scratch",
                  reporter.PhaseMs("nearest_to_alloc") /
                      reporter.PhaseMs("nearest_to_scratch"));
}

void BenchClusteredExperiment(np::bench::Reporter& reporter, bool quick) {
  np::matrix::ClusteredConfig config;
  config.nets_per_cluster = 25;
  config.num_clusters = quick ? 8 : 50;  // full: 1250 nets -> 2500 peers
  config.peers_per_net = 2;
  np::util::Rng world_rng(4);
  const auto world = np::matrix::GenerateClustered(config, world_rng);

  np::core::ExperimentConfig econfig;
  econfig.overlay_size = world.layout.peer_count() - 100;
  econfig.num_queries = quick ? 300 : 5000;

  // Reference phase: the serial overlay Build that RunClusteredExperiment
  // performs internally before its (parallel) query loop. Timed
  // standalone so the query-loop speedup can be estimated — the total
  // experiment speedup is Amdahl-capped by this serial prefix.
  {
    const np::core::MatrixSpace space(world.matrix);
    std::vector<NodeId> members;
    for (NodeId i = 0; i < econfig.overlay_size; ++i) {
      members.push_back(i);
    }
    np::meridian::MeridianOverlay algo{np::meridian::MeridianConfig{}};
    np::util::Rng rng(5);
    auto phase = reporter.Phase("clustered_build_reference",
                                econfig.overlay_size);
    algo.Build(space, members, rng);
  }

  np::core::ClusteredMetrics serial_metrics;
  np::core::ClusteredMetrics parallel_metrics;
  {
    np::meridian::MeridianOverlay algo{np::meridian::MeridianConfig{}};
    econfig.num_threads = 1;
    np::util::Rng rng(5);
    auto phase = reporter.Phase("clustered_experiment_serial",
                                econfig.num_queries);
    serial_metrics =
        np::core::RunClusteredExperiment(world, algo, econfig, rng);
  }
  {
    np::meridian::MeridianOverlay algo{np::meridian::MeridianConfig{}};
    econfig.num_threads = 0;
    np::util::Rng rng(5);
    auto phase = reporter.Phase("clustered_experiment_parallel",
                                econfig.num_queries);
    parallel_metrics =
        np::core::RunClusteredExperiment(world, algo, econfig, rng);
  }
  reporter.Derive("speedup_clustered_experiment",
                  reporter.PhaseMs("clustered_experiment_serial") /
                      reporter.PhaseMs("clustered_experiment_parallel"));
  // Query-loop-only estimate: subtract the serial build prefix from
  // both sides (clamped to stay meaningful on coarse clocks).
  const double build_ms = reporter.PhaseMs("clustered_build_reference");
  const double serial_q = std::max(
      reporter.PhaseMs("clustered_experiment_serial") - build_ms, 1e-3);
  const double parallel_q = std::max(
      reporter.PhaseMs("clustered_experiment_parallel") - build_ms, 1e-3);
  reporter.Derive("speedup_clustered_queries_est", serial_q / parallel_q);
  reporter.Derive("clustered_experiment_match",
                  SameMetrics(serial_metrics, parallel_metrics) ? 1.0 : 0.0);
  reporter.Derive("clustered_p_exact_closest",
                  parallel_metrics.p_exact_closest);
}

void BenchMeridian(np::bench::Reporter& reporter, NodeId n, int queries) {
  np::util::Rng world_rng(6);
  np::matrix::EuclideanConfig config;
  const auto world =
      np::matrix::GenerateEuclidean(n + 100, config, world_rng);
  const np::core::MatrixSpace space(world.matrix);
  std::vector<NodeId> members;
  for (NodeId i = 0; i < n; ++i) {
    members.push_back(i);
  }
  np::meridian::MeridianOverlay overlay{np::meridian::MeridianConfig{}};
  {
    np::util::Rng rng(7);
    auto phase = reporter.Phase("meridian_build", n);
    overlay.Build(space, members, rng);
  }
  {
    const np::core::MeteredSpace metered(space);
    np::util::Rng rng(8);
    auto phase = reporter.Phase("meridian_query", queries);
    for (int q = 0; q < queries; ++q) {
      const NodeId target = n + static_cast<NodeId>(q % 100);
      const auto result = overlay.FindNearest(target, metered, rng);
      if (result.found == np::kInvalidNode) {
        return;
      }
    }
  }
}

// Raw costs of the remaining building blocks (kept from the original
// micro suite so their perf trajectory stays tracked): clustered world
// generation, Chord lookups, Vivaldi training, topology latency
// queries, path-graph close-peer scans.
void BenchBuildingBlocks(np::bench::Reporter& reporter, bool quick) {
  {
    np::matrix::ClusteredConfig config;
    config.nets_per_cluster = 25;
    config.num_clusters = quick ? 10 : 50;
    np::util::Rng rng(9);
    auto phase = reporter.Phase("generate_clustered",
                                config.num_clusters * 25 * 2);
    const auto world = np::matrix::GenerateClustered(config, rng);
    if (world.matrix.size() == 0) {
      return;
    }
  }
  {
    const int n = quick ? 1024 : 16384;
    std::vector<NodeId> nodes;
    for (NodeId i = 0; i < n; ++i) {
      nodes.push_back(i);
    }
    const np::dht::ChordRing ring(nodes, np::dht::ChordConfig{});
    np::util::Rng rng(10);
    const int lookups = quick ? 2000 : 50000;
    auto phase = reporter.Phase("chord_lookup", lookups);
    for (int i = 0; i < lookups; ++i) {
      const auto result = ring.Lookup(rng(), rng);
      if (result.owner == np::kInvalidNode) {
        return;
      }
    }
  }
  {
    const NodeId n = quick ? 200 : 500;
    np::util::Rng world_rng(11);
    np::matrix::EuclideanConfig config;
    const auto world = np::matrix::GenerateEuclidean(n, config, world_rng);
    const np::core::MatrixSpace space(world.matrix);
    std::vector<NodeId> members;
    for (NodeId i = 0; i < n; ++i) {
      members.push_back(i);
    }
    np::coord::VivaldiConfig vconfig;
    np::util::Rng rng(12);
    auto phase = reporter.Phase("vivaldi_train", n);
    const auto embedding =
        np::coord::VivaldiEmbedding::Train(space, members, vconfig, rng);
    if (embedding.dimensions() == 0) {
      return;
    }
  }
  {
    np::net::TopologyConfig config = np::net::SmallTestConfig();
    config.azureus_hosts = quick ? 1000 : 3000;
    np::util::Rng world_rng(13);
    const auto topology = np::net::Topology::Generate(config, world_rng);
    const auto n = static_cast<NodeId>(topology.hosts().size());
    np::util::Rng rng(14);
    const int probes = quick ? 20000 : 200000;
    {
      auto phase = reporter.Phase("topology_latency", probes);
      double sink = 0.0;
      for (int i = 0; i < probes; ++i) {
        const auto a = static_cast<NodeId>(rng.Index(
            static_cast<std::size_t>(n)));
        const auto b = static_cast<NodeId>(rng.Index(
            static_cast<std::size_t>(n)));
        sink += topology.LatencyBetween(a, b);
      }
      if (sink < 0.0) {
        return;
      }
    }
    np::net::Tools tools(topology, np::net::NoiseConfig{},
                         np::util::Rng(15));
    const auto graph = np::measure::PathGraph::Build(
        topology, tools,
        topology.HostsOfKind(np::net::HostKind::kAzureusPeer));
    const int scans = quick ? 200 : 2000;
    auto phase = reporter.Phase("path_graph_close_peers", scans);
    for (int i = 0; i < scans; ++i) {
      const auto close = graph.ClosePeers(
          graph.peers()[static_cast<std::size_t>(i) % graph.peers().size()],
          10.0);
      if (close.size() > graph.peers().size()) {
        return;
      }
    }
  }
}

}  // namespace

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "micro_core",
      "raw costs of the simulation core: blocked/parallel Floyd-Warshall "
      "vs serial, triangle scan, allocation-free nearest queries, "
      "Meridian build/query, clustered experiment serial vs parallel.");
  const bool quick = np::bench::QuickScale();

  np::bench::Reporter reporter("core");
  np::bench::Stopwatch total;

  BenchMetricRepair(reporter, quick ? 512 : 2000);
  BenchNearestQueries(reporter, quick ? 256 : 1024, quick ? 3 : 10);
  BenchClusteredExperiment(reporter, quick);
  BenchMeridian(reporter, quick ? 400 : 2400, quick ? 200 : 1000);
  BenchBuildingBlocks(reporter, quick);

  reporter.Derive("total_wall_ms", total.ElapsedMs());
  reporter.Derive("query_loop_threads",
                  np::util::ResolveThreadCount(0));
  reporter.Write();
  np::bench::PrintNote(
      "speedup_* compare the serial reference against the blocked/"
      "parallel paths; *_match = 1 means bit-identical across thread "
      "counts, *_agreement = 1 means within rounding of serial.");
  return 0;
}
