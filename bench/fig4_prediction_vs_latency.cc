// Figure 4: prediction measure (predicted / measured) as a function of
// the predicted latency — a binned scatter with per-bin percentiles.
//
// Expected shape: the median ratio *increases* with predicted latency:
// below ~1 at small predicted latencies (DNS processing lag inflates
// King measurements), rising above 1 at large predicted latencies
// (alternate paths bypass the common upstream router).
#include "bench/common.h"
#include "measure/dns_study.h"
#include "net/tools.h"

#include "util/contract.h"

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "fig4_prediction_vs_latency",
      "Binned percentiles (5/25/50/75/95) of predicted/measured vs "
      "predicted latency; the median trends upward with predicted "
      "latency.");

  const bool quick = np::bench::QuickScale();
  np::net::TopologyConfig config = np::net::DnsStudyConfig();
  if (quick) {
    config.dns_recursive_hosts = 2000;
  }
  np::util::Rng world_rng(1);
  const auto topology = np::net::Topology::Generate(config, world_rng);
  np::net::Tools tools(topology, np::net::NoiseConfig{}, np::util::Rng(2));
  np::util::Rng study_rng(3);
  const auto result = np::measure::RunDnsStudy(
      topology, tools, np::measure::DnsStudyOptions{}, study_rng);

  const auto scatter = result.RatioVsPredicted(/*bins=*/12);
  np::util::Table table({"predicted_ms", "pairs", "p5", "p25", "median",
                         "p75", "p95"});
  for (const auto& bin : scatter.Bins()) {
    table.AddNumericRow({bin.x_representative,
                         static_cast<double>(bin.count), bin.p5, bin.p25,
                         bin.median, bin.p75, bin.p95},
                        3);
  }
  np::bench::PrintTable(table);
  np::bench::PrintNote(
      "x = predicted latency (sum of ping legs to the common router), "
      "log-binned as in the paper's plot.");
  return 0;
}
