// Figure 3: cumulative distribution of the prediction measure
// (predicted / King-measured latency) over same-cluster DNS-server
// pairs.
//
// Paper setup (§3.1): ~22,000 recursive DNS servers traced from one
// measurement host with rockettrace; servers mapped to their closest
// upstream PoP (same annotated AS+city); ~4 pairs per server inside
// each cluster; exclusions: same-domain pairs, negative ping
// subtractions, >10 hops from the common router, predicted > 100 ms.
//
// Expected shape: ~18k surviving pairs, ~65% with prediction measure
// in [0.5, 2].
#include "bench/common.h"
#include "measure/dns_study.h"
#include "net/tools.h"
#include "util/stats.h"

#include "util/contract.h"

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "fig3_prediction_cdf",
      "CDF of predicted/measured latency over ~18k DNS-server pairs; "
      "about 65% of pairs fall within [0.5, 2].");

  const bool quick = np::bench::QuickScale();
  np::net::TopologyConfig config = np::net::DnsStudyConfig();
  if (quick) {
    config.dns_recursive_hosts = 2000;
  }
  np::util::Rng world_rng(1);
  const auto topology = np::net::Topology::Generate(config, world_rng);
  np::net::Tools tools(topology, np::net::NoiseConfig{}, np::util::Rng(2));
  np::util::Rng study_rng(3);
  const auto result = np::measure::RunDnsStudy(
      topology, tools, np::measure::DnsStudyOptions{}, study_rng);

  const auto ratios = result.IncludedRatios();
  std::cout << "servers_traced: " << result.num_servers_traced << "\n";
  std::cout << "clusters: " << result.num_clusters << "\n";
  std::cout << "pairs_evaluated: " << result.pairs.size() << "\n";
  std::cout << "pairs_included: " << ratios.size() << "\n";

  const np::util::Cdf cdf{ratios};
  np::util::Table table({"ratio", "cumulative_pairs", "cumulative_frac"});
  for (const double x :
       {0.25, 0.5, 0.7, 1.0, 1.4, 2.0, 2.8, 4.0, 8.0}) {
    table.AddNumericRow(
        {x, static_cast<double>(cdf.CountAtOrBelow(x)),
         cdf.FractionAtOrBelow(x)},
        3);
  }
  np::bench::PrintTable(table);

  std::cout << "fraction_within_[0.5,2]: "
            << np::util::FormatDouble(result.FractionWithin(0.5, 2.0), 3)
            << " (paper: ~0.65)\n";
  np::bench::PrintNote(
      "ratio < 1 at small latencies (King lag inflates measurements); "
      "ratio > 1 at large (alternate paths shorten them).");
  return 0;
}
