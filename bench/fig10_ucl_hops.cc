// Figure 10: inter-peer router hop-length as a function of inter-peer
// latency (UCL-based approach evaluation).
//
// Paper setup (§5): the 22,796 peers with valid latencies; an
// adjacency graph from traceroute RTT differences; Dijkstra shortest
// paths; pairs closer than 10 ms. "The number of routers to be tracked
// in order to discover peers that are at a given latency range is
// equal to half the corresponding hop-length value."
//
// Expected shape: hop-length grows with latency; at ~4 ms the median
// hop-length is ~4 (track 2 routers); to discover peers closer than
// 5 ms, ~3 routers give a 50% success rate, ~6 routers 75%.
#include "bench/common.h"
#include "measure/heuristic_eval.h"
#include "net/tools.h"

#include "util/contract.h"

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "fig10_ucl_hops",
      "Binned percentiles of router hop-length vs inter-peer latency "
      "for pairs < 10 ms; median grows with latency (~4 hops at ~4 "
      "ms). Track half the hop-length in upstream routers to discover "
      "the pair.");

  const bool quick = np::bench::QuickScale();
  np::net::TopologyConfig config = np::net::AzureusStudyConfig();
  if (quick) {
    config.azureus_hosts = 15000;
  }
  np::util::Rng world_rng(1);
  const auto topology = np::net::Topology::Generate(config, world_rng);
  np::net::Tools tools(topology, np::net::NoiseConfig{}, np::util::Rng(2));

  const auto peers = topology.HostsOfKind(np::net::HostKind::kAzureusPeer);
  const auto graph = np::measure::PathGraph::Build(topology, tools, peers);
  std::cout << "peers_in_graph: " << graph.peers().size()
            << " (paper: 22796 of 156k)\n";
  std::cout << "graph_nodes: " << graph.node_count()
            << ", graph_edges: " << graph.edge_count() << "\n";

  const auto sets = np::measure::ComputeCloseSets(
      graph, np::measure::HeuristicEvalOptions{});
  const auto scatter = np::measure::HopLengthVsLatency(sets);

  np::util::Table table({"latency_ms", "pairs", "hops_p5", "hops_p25",
                         "hops_median", "hops_p75", "hops_p95"});
  for (const auto& bin : scatter.Bins()) {
    table.AddNumericRow({bin.x_representative,
                         static_cast<double>(bin.count), bin.p5, bin.p25,
                         bin.median, bin.p75, bin.p95},
                        2);
  }
  np::bench::PrintTable(table);
  np::bench::PrintNote(
      "hop counts come from Dijkstra paths over the traceroute-derived "
      "graph, as in the paper; pairs <10 ms only.");
  return 0;
}
