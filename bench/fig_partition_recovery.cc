// fig_partition_recovery: degradation envelope under clean network
// partitions. One clustered world splits into two halves for 1, 3, or
// 5 epochs; for each duration x algorithm the bench reports how deep
// the partition-aware accuracy (p_exact_reachable) dips during the
// window and how many epochs after the heal the overlay needs to claw
// back to 95% of its pre-fault accuracy — the suspicion ledger's
// quarantine/probation arc and the heal-epoch rejoin refresh are what
// make the recovery fast.
//
// Not a paper figure: the paper's overlays never see a partition. This
// is the robustness envelope CI gates on — a regression that slows
// self-healing shows up as recovery_epochs jumping past the gate.
//
// Emits BENCH_partition_recovery.json: one phase per (duration, algo)
// run and derived metrics
//   dur<d>_<algo>_pre_p_exact    mean p_exact over the 3 pre epochs
//   dur<d>_<algo>_dip            min p_exact_reachable in the window
//   dur<d>_<algo>_recovery_epochs  epochs after heal until p_exact
//                                  >= 0.95 * pre (99 = never)
//   dur<d>_<algo>_post_p_exact   mean p_exact over the post epochs
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench/algo_factory.h"
#include "bench/common.h"
#include "bench/reporter.h"
#include "core/scenario.h"
#include "matrix/generators.h"
#include "util/contract.h"
#include "util/table.h"

namespace {

using np::core::ChurnSchedule;
using np::core::ChurnScheduleConfig;
using np::core::FaultConfig;
using np::core::ScenarioConfig;
using np::core::ScenarioReport;

constexpr int kPreEpochs = 3;
constexpr int kPostEpochs = 3;
constexpr double kRecoveryFraction = 0.95;
constexpr int kNeverRecovered = 99;

double MeanPExactOver(const ScenarioReport& report, int first, int last) {
  double sum = 0.0;
  int n = 0;
  for (int e = first; e <= last &&
                      e < static_cast<int>(report.epochs.size());
       ++e) {
    sum += report.epochs[static_cast<std::size_t>(e)].p_exact_closest;
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

}  // namespace

int main() {
  NP_REPORT_AFFECTING();
  np::bench::PrintHeader(
      "fig_partition_recovery",
      "Not a paper figure. Partition-duration sweep on one clustered "
      "world split into two halves: per algorithm, the minimum "
      "partition-aware accuracy (p_exact_reachable) during the window "
      "and the epochs needed after the heal to recover 95% of the "
      "pre-fault p_exact. Suspicion ledger on (3 strikes), probe loss "
      "0 so the dip is pure partition damage.");
  const bool quick = np::bench::QuickScale();

  np::matrix::ClusteredConfig wconfig;
  wconfig.num_clusters = quick ? 4 : 8;
  wconfig.nets_per_cluster = quick ? 15 : 30;
  wconfig.peers_per_net = 2;
  wconfig.delta = 0.8;
  np::util::Rng wrng(7);
  const auto world = np::matrix::GenerateClustered(wconfig, wrng);
  const np::core::MatrixSpace space(world.matrix);

  // Both halves of the cluster id range go dark to each other.
  std::vector<std::vector<int>> groups(2);
  for (int c = 0; c < wconfig.num_clusters; ++c) {
    groups[c < wconfig.num_clusters / 2 ? 0 : 1].push_back(c);
  }

  const std::vector<std::string> algorithms = {"tiers", "karger-ruhl",
                                               "meridian", "coord-vivaldi"};
  const std::vector<int> durations = {1, 3, 5};

  np::bench::Reporter reporter("partition_recovery");
  np::util::Table table({"duration", "algorithm", "pre_p_exact", "dip",
                         "recovery_epochs", "post_p_exact"});
  for (const int duration : durations) {
    const int epochs = kPreEpochs + duration + kPostEpochs;
    // One schedule per duration: epoch windows scale with the horizon,
    // but every algorithm of a duration sees the identical event list.
    ChurnScheduleConfig cconfig;
    cconfig.duration_s = 50.0 * epochs;
    cconfig.events_per_s = quick ? 0.1 : 0.2;
    cconfig.join_fraction = 0.5;
    cconfig.seed = 13;
    const ChurnSchedule schedule = ChurnSchedule::Poisson(cconfig);

    ScenarioConfig sconfig;
    sconfig.initial_overlay =
        static_cast<np::NodeId>(world.layout.peer_count() * 2 / 3);
    sconfig.epochs = epochs;
    sconfig.queries_per_epoch = quick ? 100 : 250;
    sconfig.num_threads = 0;
    FaultConfig::Partition window;
    window.start_epoch = kPreEpochs;
    window.end_epoch = kPreEpochs + duration;
    window.groups = groups;
    sconfig.fault.partitions.push_back(window);
    sconfig.fault.suspicion.strikes = 3;
    sconfig.seed = 11;

    const std::string dur = "dur" + std::to_string(duration);
    for (const std::string& name : algorithms) {
      const auto algo = np::bench::MakeBenchAlgorithm(name);
      ScenarioReport report;
      {
        auto phase = reporter.Phase(
            dur + "_" + name,
            static_cast<double>(sconfig.epochs * sconfig.queries_per_epoch));
        report = RunScenario(space, &world.layout, *algo, schedule, sconfig);
      }
      const double pre = MeanPExactOver(report, 0, kPreEpochs - 1);
      double dip = 1.0;
      for (int e = kPreEpochs; e < kPreEpochs + duration; ++e) {
        dip = std::min(
            dip, report.epochs[static_cast<std::size_t>(e)].p_exact_reachable);
      }
      // First post-heal epoch back within kRecoveryFraction of the
      // pre-fault accuracy; 0 = the epoch right after the heal.
      int recovery = kNeverRecovered;
      for (int k = 0; k < kPostEpochs; ++k) {
        const std::size_t e =
            static_cast<std::size_t>(kPreEpochs + duration + k);
        if (report.epochs[e].p_exact_closest >= kRecoveryFraction * pre) {
          recovery = k;
          break;
        }
      }
      const double post = MeanPExactOver(report, kPreEpochs + duration,
                                         epochs - 1);
      reporter.Derive(dur + "_" + name + "_pre_p_exact", pre);
      reporter.Derive(dur + "_" + name + "_dip", dip);
      reporter.Derive(dur + "_" + name + "_recovery_epochs",
                      static_cast<double>(recovery));
      reporter.Derive(dur + "_" + name + "_post_p_exact", post);
      table.AddRow({std::to_string(duration), name,
                    np::util::FormatDouble(pre, 3),
                    np::util::FormatDouble(dip, 3), std::to_string(recovery),
                    np::util::FormatDouble(post, 3)});
    }
  }

  np::bench::PrintTable(table);
  np::bench::PrintNote(
      "window = epochs [3, 3+duration); dip is the worst "
      "p_exact_reachable inside it (truth restricted to the target's "
      "component, honest failures on unreachable targets count "
      "correct). recovery_epochs = first post-heal epoch at >= 95% of "
      "pre-fault p_exact (99 = not within the measured tail). CI gates "
      "the 3-epoch dip floor and recovery <= 2 per algorithm.");
  reporter.Write();
  return 0;
}
